"""Recorder protocol: the zero-overhead telemetry hook surface.

Every layer that emits telemetry — the engines, the control plane, the
sweep runner — talks to one tiny interface with three hooks:

* :meth:`Recorder.frame` — a per-frame probe (alive count, state-of-
  charge quantiles, pending jobs, quantised link load/wear levels);
* :meth:`Recorder.event` — a discrete event (re-plan with cause and
  per-cost-term attribution, fault, harvest rejection, deadlock
  report/recovery, node death, run end);
* :meth:`Recorder.timing` — a wall-clock duration around a hot path
  (Floyd–Warshall rebuild, whole plan computation, frame step, vector
  bank draw, sweep-point execution).

The default :data:`NULL_RECORDER` keeps every hook a no-op *and* is
gated out of the hot paths entirely: callers cache ``recorder.active``
/ ``recorder.times`` as booleans at construction time, so a
recorder-free run executes exactly the pre-telemetry instruction
stream — bit-identical results, benchmark-noise overhead (asserted by
the property suite and the CI overhead guard).

:class:`TraceRecorder` is the shipping implementation: it accumulates
events in memory and exports them as JSONL lines.  Determinism is a
schema property, not an accident — wall-clock timings live in a single
trailing ``kind == "timers"`` line (the non-deterministic channel), so
:meth:`TraceRecorder.deterministic_lines` is a pure function of the
simulation configuration and golden-testable.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Protocol, runtime_checkable

#: Version stamp of the JSONL trace schema.
TRACE_SCHEMA = 1

#: The line kind carrying wall-clock timer aggregates — the only
#: non-deterministic line kind; strip it to compare traces across runs.
TIMERS_KIND = "timers"


@runtime_checkable
class Recorder(Protocol):
    """Telemetry sink threaded through engines, control plane, runners.

    ``active`` gates probes/events and ``times`` gates timers; callers
    cache both as local booleans so a disabled recorder costs nothing
    on the hot paths.
    """

    #: Whether :meth:`frame` / :meth:`event` capture anything.
    active: bool
    #: Whether :meth:`timing` captures anything.
    times: bool

    def frame(self, frame: int, **fields: Any) -> None:
        """One per-frame probe (only called when ``active``)."""
        ...

    def event(self, event: str, frame: int, **fields: Any) -> None:
        """One discrete event (only called when ``active``)."""
        ...

    def timing(self, name: str, seconds: float) -> None:
        """One hot-path duration (only called when ``times``)."""
        ...


class NullRecorder:
    """The default recorder: every hook is an inlined no-op.

    Stateless and shared (:data:`NULL_RECORDER`): constructing engines
    without an explicit recorder attaches this singleton, and the
    cached ``active`` / ``times`` flags keep every telemetry branch
    off the instruction stream of a recorder-free run.
    """

    __slots__ = ()

    active = False
    times = False

    def frame(self, frame: int, **fields: Any) -> None:
        pass

    def event(self, event: str, frame: int, **fields: Any) -> None:
        pass

    def timing(self, name: str, seconds: float) -> None:
        pass

    def __repr__(self) -> str:
        return "NullRecorder()"


#: Shared do-nothing recorder attached wherever none is supplied.
NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """In-memory structured trace of one simulation run.

    Captures the deterministic channel (frame probes, level-crossing
    snapshots, discrete events) as plain dicts in arrival order, and
    aggregates the non-deterministic channel (wall-clock timers) into
    per-name count/total/min/max statistics emitted as one trailing
    line.

    Args:
        frame_stride: Emit a ``frame`` probe every N-th frame (level
            crossings are always recorded — they are report triggers,
            not samples).  1 records every frame.
        capture_timings: Keep the wall-clock channel; False drops it
            at the source (``times`` stays False), e.g. for traces
            meant to be byte-compared across machines.
    """

    active = True

    def __init__(
        self, frame_stride: int = 1, capture_timings: bool = True
    ):
        if frame_stride < 1:
            raise ValueError(
                f"frame_stride must be >= 1, got {frame_stride}"
            )
        self.frame_stride = int(frame_stride)
        self.times = bool(capture_timings)
        self.events: list[dict] = []
        #: name -> [count, total_s, min_s, max_s]
        self._timers: dict[str, list[float]] = {}
        #: metric -> last snapshotted levels (dedup of per-frame pushes).
        self._last_levels: dict[str, dict] = {}

    # -- hooks ----------------------------------------------------------
    def frame(self, frame: int, **fields: Any) -> None:
        """Record a frame probe; level dicts are deduplicated."""
        for metric in ("load_levels", "wear_levels"):
            levels = fields.pop(metric, None)
            if levels is None:
                continue
            if levels != self._last_levels.get(metric):
                self._last_levels[metric] = dict(levels)
                self.events.append(
                    {
                        "kind": "levels",
                        "metric": metric.removesuffix("_levels"),
                        "frame": frame,
                        "levels": _level_keys(levels),
                    }
                )
        if frame % self.frame_stride:
            return
        self.events.append({"kind": "frame", "frame": frame, **fields})

    def event(self, event: str, frame: int, **fields: Any) -> None:
        self.events.append(
            {"kind": "event", "event": event, "frame": frame, **fields}
        )

    def timing(self, name: str, seconds: float) -> None:
        stats = self._timers.get(name)
        if stats is None:
            self._timers[name] = [1, seconds, seconds, seconds]
        else:
            stats[0] += 1
            stats[1] += seconds
            stats[2] = min(stats[2], seconds)
            stats[3] = max(stats[3], seconds)

    # -- export ---------------------------------------------------------
    def timer_stats(self) -> dict[str, dict]:
        """Aggregated wall-clock statistics per timer name."""
        return {
            name: {
                "count": int(count),
                "total_s": round(total, 9),
                "min_s": round(lo, 9),
                "max_s": round(hi, 9),
            }
            for name, (count, total, lo, hi) in sorted(
                self._timers.items()
            )
        }

    def lines(self, meta: Mapping[str, Any] | None = None) -> list[dict]:
        """The full trace as JSONL-ready dicts.

        An optional ``meta`` header line leads; the timer aggregate
        trails as the single ``kind == "timers"`` line when any timer
        fired (the non-deterministic channel).
        """
        lines: list[dict] = []
        if meta is not None:
            header = {"kind": "meta", "schema": TRACE_SCHEMA}
            header.update(meta)
            lines.append(header)
        lines.extend(self.events)
        if self._timers:
            lines.append(
                {"kind": TIMERS_KIND, "timers": self.timer_stats()}
            )
        return lines

    def deterministic_lines(
        self, meta: Mapping[str, Any] | None = None
    ) -> list[dict]:
        """The trace with the wall-clock channel stripped."""
        return strip_timings(self.lines(meta))

    def __repr__(self) -> str:
        return (
            f"TraceRecorder({len(self.events)} events, "
            f"{len(self._timers)} timers)"
        )


def strip_timings(lines: Iterable[Mapping[str, Any]]) -> list[dict]:
    """Drop every non-deterministic line from a trace.

    Removes the ``kind == "timers"`` aggregate and any per-line
    ``elapsed_s`` annotation a harness attached, leaving a pure
    function of the simulation configuration.
    """
    stripped = []
    for line in lines:
        if line.get("kind") == TIMERS_KIND:
            continue
        if "elapsed_s" in line:
            line = {k: v for k, v in line.items() if k != "elapsed_s"}
        stripped.append(dict(line))
    return stripped


def _level_keys(levels: Mapping[tuple[int, int], int]) -> dict[str, int]:
    """JSON-safe ``"u-v" -> level`` form of a link-level snapshot."""
    return {
        f"{u}-{v}": int(level)
        for (u, v), level in sorted(levels.items())
    }
