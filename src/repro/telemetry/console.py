"""One logging setup for the CLI plus the sweep heartbeat.

The CLI's ad-hoc status prints (bench cache summaries, fleet cache
lines) now go through the standard :mod:`logging` machinery on a
``repro.*`` logger hierarchy: tables and JSON documents stay on stdout
(they are the command's *output*), while progress and diagnostics land
on stderr at a level selected by ``--verbose`` / ``--quiet``.

:class:`Heartbeat` adapts the existing sweep/fleet progress hooks into
a rate-limited progress line (points/s and ETA) so a long fleet run is
observable without flooding the terminal.
"""

from __future__ import annotations

import logging
import sys
import time
from typing import Callable

#: Root of the package's logger hierarchy.
LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (the root one by default)."""
    if not name:
        return logging.getLogger(LOGGER_NAME)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


def setup_logging(
    verbose: bool = False, quiet: bool = False, stream=None
) -> logging.Logger:
    """Configure the ``repro`` logger for one CLI invocation.

    ``--quiet`` shows warnings only, the default shows progress
    (INFO), ``--verbose`` adds debug detail.  Handlers attach to the
    package logger — never the root logger — so embedding applications
    keep their own logging configuration untouched.  Idempotent:
    repeated calls (tests invoking ``main`` many times) reconfigure
    the single handler instead of stacking new ones.
    """
    logger = logging.getLogger(LOGGER_NAME)
    logger.handlers.clear()
    handler = logging.StreamHandler(
        stream if stream is not None else sys.stderr
    )
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    logger.propagate = False
    if quiet:
        logger.setLevel(logging.WARNING)
    elif verbose:
        logger.setLevel(logging.DEBUG)
    else:
        logger.setLevel(logging.INFO)
    return logger


class Heartbeat:
    """Rate-limited progress line driven by the existing progress hooks.

    Works as a :data:`~repro.fleet.runner.FleetProgress` callback
    (``(record, done, total)``) or, via :meth:`tick`, from any hook
    that only knows "one more point finished".  Emits at most one line
    per ``min_interval_s`` — plus always the final one — with points/s
    and the remaining-time estimate.

    Args:
        total: Expected point count (None disables the ETA).
        label: Word naming the unit of work in the emitted line.
        logger: Destination logger (the package logger by default).
        min_interval_s: Minimum seconds between emitted lines.
        clock: Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        total: int | None = None,
        label: str = "points",
        logger: logging.Logger | None = None,
        min_interval_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.total = total
        self.label = label
        self._logger = logger if logger is not None else get_logger()
        self._interval = float(min_interval_s)
        self._clock = clock
        self._started = clock()
        self._last_emit = self._started - self._interval
        self._done = 0

    def __call__(self, record, done: int, total: int) -> None:
        """Fleet-progress signature adapter."""
        self.total = total
        self._done = done
        self._maybe_emit(final=done >= total)

    def tick(self, done: int | None = None) -> None:
        """One more point finished (hooks without a running count)."""
        self._done = self._done + 1 if done is None else done
        final = self.total is not None and self._done >= self.total
        self._maybe_emit(final=final)

    def _maybe_emit(self, final: bool) -> None:
        now = self._clock()
        if not final and now - self._last_emit < self._interval:
            return
        self._last_emit = now
        self._logger.info(self.line())

    def line(self) -> str:
        """The current progress line (exposed for tests)."""
        elapsed = max(self._clock() - self._started, 1e-9)
        rate = self._done / elapsed
        if self.total:
            share = 100.0 * self._done / self.total
            head = (
                f"{self.label} {self._done}/{self.total} ({share:.1f}%)"
            )
            if rate > 0.0 and self._done < self.total:
                eta = (self.total - self._done) / rate
                return f"{head} — {rate:.1f}/s, ETA {_fmt_eta(eta)}"
            return f"{head} — {rate:.1f}/s"
        return f"{self.label} {self._done} — {rate:.1f}/s"


def _fmt_eta(seconds: float) -> str:
    if seconds >= 3600.0:
        return f"{seconds / 3600.0:.1f}h"
    if seconds >= 60.0:
        return f"{seconds / 60.0:.1f}m"
    return f"{seconds:.0f}s"
