"""One logging setup for the CLI plus the sweep heartbeat.

The CLI's ad-hoc status prints (bench cache summaries, fleet cache
lines) now go through the standard :mod:`logging` machinery on a
``repro.*`` logger hierarchy: tables and JSON documents stay on stdout
(they are the command's *output*), while progress and diagnostics land
on stderr at a level selected by ``--verbose`` / ``--quiet``.

:class:`Heartbeat` adapts the existing sweep/fleet progress hooks into
a rate-limited progress line (points/s and ETA) so a long fleet run is
observable without flooding the terminal.
"""

from __future__ import annotations

import logging
import sys
import time
from collections import deque
from typing import Callable

#: Root of the package's logger hierarchy.
LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (the root one by default)."""
    if not name:
        return logging.getLogger(LOGGER_NAME)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


def setup_logging(
    verbose: bool = False, quiet: bool = False, stream=None
) -> logging.Logger:
    """Configure the ``repro`` logger for one CLI invocation.

    ``--quiet`` shows warnings only, the default shows progress
    (INFO), ``--verbose`` adds debug detail.  Handlers attach to the
    package logger — never the root logger — so embedding applications
    keep their own logging configuration untouched.  Idempotent:
    repeated calls (tests invoking ``main`` many times) reconfigure
    the single handler instead of stacking new ones.
    """
    logger = logging.getLogger(LOGGER_NAME)
    logger.handlers.clear()
    handler = logging.StreamHandler(
        stream if stream is not None else sys.stderr
    )
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    logger.propagate = False
    if quiet:
        logger.setLevel(logging.WARNING)
    elif verbose:
        logger.setLevel(logging.DEBUG)
    else:
        logger.setLevel(logging.INFO)
    return logger


class Heartbeat:
    """Rate-limited progress line driven by the existing progress hooks.

    Works as a :data:`~repro.fleet.runner.FleetProgress` callback
    (``(record, done, total)``) or, via :meth:`tick`, from any hook
    that only knows "one more point finished".  Emits at most one line
    per ``min_interval_s`` — plus always a terminal one — with points/s
    and the remaining-time estimate.

    The rate is computed over a *sliding window* (``window_s``) of
    recent progress samples, not the whole run: a warm-cache fleet
    serves its first thousands of garments in a burst, and a
    cumulative points/s would keep promising that burst rate long
    after the run has settled into simulating fresh points — producing
    wildly optimistic ETAs.  The window forgets the burst.

    A run that ends inside a quiet window could have its last progress
    line swallowed by the rate limiter; :meth:`finish` (idempotent,
    called by the CLI in a ``finally``) always emits the terminal line
    exactly once, as does the final ``done == total`` callback.

    Args:
        total: Expected point count (None disables the ETA).
        label: Word naming the unit of work in the emitted line.
        logger: Destination logger (the package logger by default).
        min_interval_s: Minimum seconds between emitted lines.
        window_s: Sliding-window span the rate is measured over.
        clock: Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        total: int | None = None,
        label: str = "points",
        logger: logging.Logger | None = None,
        min_interval_s: float = 1.0,
        window_s: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.total = total
        self.label = label
        self._logger = logger if logger is not None else get_logger()
        self._interval = float(min_interval_s)
        self._window = float(window_s)
        self._clock = clock
        self._started = clock()
        self._last_emit = self._started - self._interval
        self._done = 0
        self._finished = False
        # (time, done) progress samples; the oldest one anchors the
        # sliding-window rate.  Seeded with the start so the very first
        # window degrades gracefully to the cumulative rate.
        self._samples: deque[tuple[float, int]] = deque()
        self._samples.append((self._started, 0))

    def __call__(self, record, done: int, total: int) -> None:
        """Fleet-progress signature adapter."""
        self.total = total
        self._observe(done)
        self._maybe_emit(final=done >= total)

    def tick(self, done: int | None = None) -> None:
        """One more point finished (hooks without a running count)."""
        self._observe(self._done + 1 if done is None else done)
        final = self.total is not None and self._done >= self.total
        self._maybe_emit(final=final)

    def finish(self) -> None:
        """Emit the terminal progress line (idempotent).

        Call when the run is over: the rate limiter can never swallow
        this line, and a run whose final callback already emitted it
        (``done == total``) does not get a duplicate.
        """
        self._maybe_emit(final=True)

    def _observe(self, done: int) -> None:
        self._done = done
        now = self._clock()
        self._samples.append((now, done))
        # Drop samples that fell out of the window, always keeping the
        # newest out-of-window one as the rate anchor.
        while len(self._samples) > 2 and now - self._samples[1][0] >= (
            self._window
        ):
            self._samples.popleft()

    def _maybe_emit(self, final: bool) -> None:
        if final:
            if self._finished:
                return
            self._finished = True
        else:
            now = self._clock()
            if now - self._last_emit < self._interval:
                return
            self._last_emit = now
        self._logger.info(self.line())

    def rate(self) -> float:
        """Points per second over the sliding window.

        Falls back to the cumulative rate while fewer than two samples
        (or no wall-clock progress) exist in the window.
        """
        now = self._clock()
        anchor_time, anchor_done = self._samples[0]
        if len(self._samples) >= 2 and now > anchor_time:
            return (self._done - anchor_done) / (now - anchor_time)
        return self._done / max(now - self._started, 1e-9)

    def line(self) -> str:
        """The current progress line (exposed for tests)."""
        rate = self.rate()
        if self.total:
            share = 100.0 * self._done / self.total
            head = (
                f"{self.label} {self._done}/{self.total} ({share:.1f}%)"
            )
            if rate > 0.0 and self._done < self.total:
                eta = (self.total - self._done) / rate
                return f"{head} — {rate:.1f}/s, ETA {_fmt_eta(eta)}"
            return f"{head} — {rate:.1f}/s"
        return f"{self.label} {self._done} — {rate:.1f}/s"


def _fmt_eta(seconds: float) -> str:
    if seconds >= 3600.0:
        return f"{seconds / 3600.0:.1f}h"
    if seconds >= 60.0:
        return f"{seconds / 60.0:.1f}m"
    return f"{seconds:.0f}s"
