"""Zero-overhead telemetry: structured run traces, timers, logging.

The package has three pieces:

* :mod:`~repro.telemetry.recorder` — the :class:`Recorder` hook
  protocol, the do-nothing default (:data:`NULL_RECORDER`, bit-identical
  runs) and the in-memory :class:`TraceRecorder` whose deterministic
  event channel is golden-testable while wall-clock timers ride in a
  separate trailing line;
* :mod:`~repro.telemetry.trace_io` — JSONL persistence
  (:func:`dump_trace` / :func:`load_trace`) and the streaming
  :class:`TraceWriter` that multiplexes many sweep points into one
  tagged trace file;
* :mod:`~repro.telemetry.console` — the CLI's single
  :func:`setup_logging` entry point and the rate-limited
  :class:`Heartbeat` progress line for long sweeps and fleets.
"""

from .console import Heartbeat, get_logger, setup_logging
from .recorder import (
    NULL_RECORDER,
    TIMERS_KIND,
    TRACE_SCHEMA,
    NullRecorder,
    Recorder,
    TraceRecorder,
    strip_timings,
)
from .trace_io import TraceWriter, dump_trace, load_trace

__all__ = [
    "Heartbeat",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "TIMERS_KIND",
    "TRACE_SCHEMA",
    "TraceRecorder",
    "TraceWriter",
    "dump_trace",
    "get_logger",
    "load_trace",
    "setup_logging",
    "strip_timings",
]
