"""JSONL trace persistence: dump, load, and multi-point stream writing.

A trace file is one JSON object per line (JSONL).  Single runs dump
their recorder in one shot (:func:`dump_trace`); sweep/bench/fleet
commands stream many points into one file through a :class:`TraceWriter`
that tags every line with the originating point so a multi-point file
remains self-describing.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Mapping


def dump_trace(
    path: str | os.PathLike, lines: Iterable[Mapping[str, Any]]
) -> int:
    """Write trace lines to ``path`` as JSONL; returns the line count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(json.dumps(line, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def load_trace(path: str | os.PathLike) -> list[dict]:
    """Read a JSONL trace back into a list of dicts (blank-line safe)."""
    lines: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for raw in handle:
            raw = raw.strip()
            if raw:
                lines.append(json.loads(raw))
    return lines


class TraceWriter:
    """Streaming JSONL writer for multi-point traces.

    Each :meth:`add` call appends one point's trace lines, merging the
    given tags (point label, scenario name, ...) into every line so the
    file can be grouped back per point.  Usable as a context manager.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = path
        self._handle = open(path, "w", encoding="utf-8")
        self.lines_written = 0
        self.points_written = 0

    def write(self, line: Mapping[str, Any]) -> None:
        """Append one raw line."""
        self._handle.write(json.dumps(line, sort_keys=True))
        self._handle.write("\n")
        self.lines_written += 1

    def add(
        self,
        lines: Iterable[Mapping[str, Any]] | None,
        **tags: Any,
    ) -> int:
        """Append one point's trace, tagging every line; None is a no-op
        (cache hits carry no trace)."""
        if lines is None:
            return 0
        count = 0
        for line in lines:
            self.write({**tags, **line})
            count += 1
        if count:
            self.points_written += 1
        return count

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
