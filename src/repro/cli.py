"""Command-line interface: ``etsim`` / ``python -m repro``.

Subcommands:

* ``bound``         — evaluate Theorem 1 for a mesh size.
* ``simulate``      — run one et_sim simulation and print the summary.
* ``sweep``         — the Fig 7 EAR-vs-SDR sweep (parallel, cacheable).
* ``bench``         — run registered sweep scenarios through the
  orchestration layer (``--smoke`` is the CI entry point).
* ``fleet``         — stream a population-scale fleet of sampled
  garments through the runner with O(1)-memory aggregation.
* ``battery-curve`` — print the thin-film discharge curve (Fig 2).
* ``mapping``       — print the module mapping of a mesh (Fig 3b).
* ``trace``         — render a ``--trace`` JSONL capture as an ASCII
  timeline plus re-plan/fault/term-attribution report.
* ``regen-golden``  — re-run the golden smoke points and rewrite the
  fixtures under ``tests/golden`` (after intentional behaviour
  changes).

``simulate``/``sweep``/``bench``/``fleet`` accept ``--trace PATH`` to
capture a structured telemetry trace of every executed run, and every
command accepts ``--verbose``/``--quiet`` to tune the stderr log level
(tables and JSON stay on stdout).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .analysis.tables import format_table
from .analysis.theory import bound_for
from .battery.thin_film import ThinFilmBattery, ThinFilmParameters
from .config import (
    ENGINE_NAMES,
    MAPPING_STRATEGIES,
    PlatformConfig,
    RoutingOptions,
    SimulationConfig,
    WorkloadConfig,
)
from .core.weights import DEFAULT_CONGESTION_Q
from .faults import FAULT_PROFILES, FaultConfig
from .harvest import (
    HARDWARE_PLACEMENTS,
    HARVEST_PROFILES,
    HarvestConfig,
    HarvestHardware,
    build_harvest_schedule,
)
from .mesh.geometry import node_id
from .orchestration import (
    CACHE_BACKENDS,
    GOLDEN_SMOKE_POINTS,
    SweepCache,
    build_scenario,
    make_runner,
    scenarios,
)
from .sim.et_sim import run_simulation
from .telemetry import (
    Heartbeat,
    TraceRecorder,
    TraceWriter,
    dump_trace,
    get_logger,
    load_trace,
    setup_logging,
)
from .version import PAPER_CITATION, __version__


def _add_logging_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="debug-level diagnostics on stderr",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress progress lines (warnings only)",
    )


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a structured JSONL telemetry trace of every "
        "executed run to PATH (render it with `repro trace PATH`)",
    )


def _add_mesh_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mesh", type=int, default=4, metavar="W",
        help="mesh width (square WxW mesh, default 4)",
    )


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fault-profile", choices=FAULT_PROFILES, default="none",
        help="fault-injection profile (default none)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0, metavar="S",
        help="seed of the fault schedule generator",
    )
    parser.add_argument(
        "--fault-intensity", type=float, default=1.0, metavar="X",
        help="fault event cadence multiplier (default 1.0)",
    )
    parser.add_argument(
        "--fault-repair-frames", type=int, default=0, metavar="F",
        help="re-sew every cut line F frames after its cut (0 = never)",
    )
    parser.add_argument(
        "--repair-crew", type=int, default=0, metavar="N",
        help="repair-crew size: N menders fix cut lines oldest-first, "
        "each repair taking --repair-latency frames (0 = no crew; "
        "mutually exclusive with --fault-repair-frames)",
    )
    parser.add_argument(
        "--repair-latency", type=int, default=8, metavar="F",
        help="frames one crew member needs to re-sew one line (default 8)",
    )
    parser.add_argument(
        "--fault-corrode-frames", type=int, default=0, metavar="F",
        help="moisture only: cumulative degraded frames after which a "
        "wet link corrodes through into a permanent cut (0 = never)",
    )
    parser.add_argument(
        "--wear-weight", action="store_true",
        help="enable the wear-prediction routing weight (EAR routes "
        "around high-wear lines before they sever)",
    )


def _fault_config(args: argparse.Namespace) -> FaultConfig:
    if args.fault_profile == "none":
        # Seed/intensity are inert without a profile; normalise so the
        # config (and therefore its cache hash) matches a flag-free run.
        return FaultConfig()
    return FaultConfig(
        profile=args.fault_profile,
        seed=args.fault_seed,
        intensity=args.fault_intensity,
        repair_after_frames=args.fault_repair_frames,
        repair_crew_size=args.repair_crew,
        repair_latency_frames=args.repair_latency,
        corrode_after_frames=args.fault_corrode_frames,
    )


def _add_income_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags describing the income picture (profile + hardware) alone.

    The ``mapping`` subcommand takes only these: the runtime knobs
    (routing weight, bus reach) cannot change a printed mapping.
    """
    parser.add_argument(
        "--harvest-profile", choices=HARVEST_PROFILES, default="none",
        help="energy-harvesting profile (default none)",
    )
    parser.add_argument(
        "--harvest-seed", type=int, default=0, metavar="S",
        help="seed of the harvest activity-trace generator",
    )
    parser.add_argument(
        "--harvest-amplitude", type=float, default=40.0, metavar="PJ",
        help="peak per-node income per frame in pJ (default 40)",
    )
    parser.add_argument(
        "--harvest-hardware", type=float, default=1.0, metavar="FRAC",
        help="fraction of mesh nodes that carry a generator (default "
        "1.0 = the homogeneous platform; smaller values mount "
        "harvesters selectively per --harvest-placement)",
    )
    parser.add_argument(
        "--harvest-placement", choices=HARDWARE_PLACEMENTS,
        default="flex",
        help="where the equipped nodes sit when --harvest-hardware < 1 "
        "(default flex = highest-flex sites first)",
    )


def _add_harvest_arguments(parser: argparse.ArgumentParser) -> None:
    _add_income_arguments(parser)
    parser.add_argument(
        "--harvest-weight", action="store_true",
        help="enable the harvest-bonus routing weight (the controller "
        "learns per-node income rates and EAR steers traffic toward "
        "energy-rich regions while their cells are still full)",
    )
    parser.add_argument(
        "--share-max-hops", type=int, default=1, metavar="H",
        help="textile-bus reach: line segments one power transfer may "
        "traverse, compounding the per-hop conversion loss (default 1)",
    )


def _harvest_config(args: argparse.Namespace) -> HarvestConfig:
    if args.harvest_profile == "none":
        # Normalise inert knobs so the cache hash matches a flag-free run.
        return HarvestConfig()
    # All-equipped hardware is inert whatever its seed/placement:
    # normalise to the default spec so the cache hash cannot fork on
    # flags that change nothing.
    hardware = (
        HarvestHardware()
        if args.harvest_hardware == 1.0
        else HarvestHardware(
            equipped_fraction=args.harvest_hardware,
            placement=args.harvest_placement,
            seed=args.harvest_seed,
        )
    )
    return HarvestConfig(
        profile=args.harvest_profile,
        seed=args.harvest_seed,
        amplitude_pj=args.harvest_amplitude,
        # Only the bus profile shares power: normalise the hop limit
        # elsewhere so an inert flag cannot fork the cache hash.  The
        # mapping subcommand has no bus flags at all, hence the getattr.
        share_max_hops=(
            getattr(args, "share_max_hops", 1)
            if args.harvest_profile == "bus"
            else 1
        ),
        hardware=hardware,
    )


def _add_routing_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--congestion-weight", action="store_true",
        help="enable the congestion routing weight (the engine tracks "
        "per-link utilisation and EAR spreads traffic off hot links)",
    )
    parser.add_argument(
        "--congestion-q", type=float, default=DEFAULT_CONGESTION_Q,
        metavar="Q",
        help="penalty base of the congestion weight (>= 1; 1 = "
        f"measure-only, default {DEFAULT_CONGESTION_Q})",
    )
    parser.add_argument(
        "--ecmp", action="store_true",
        help="round-robin over equal-cost successor groups instead of "
        "always forwarding on the canonical shortest-path successor",
    )
    parser.add_argument(
        "--ecmp-seed", type=int, default=0, metavar="S",
        help="seed of the deterministic ECMP rotation offsets",
    )


def _routing_options(args: argparse.Namespace) -> RoutingOptions:
    if not args.congestion_weight and not args.ecmp:
        # Normalise inert knobs (q, seed) so the config — and therefore
        # its cache hash — matches a flag-free run.
        return RoutingOptions()
    return RoutingOptions(
        congestion_aware=args.congestion_weight,
        # Q is inert without --congestion-weight, the seed without
        # --ecmp: normalise both away so they cannot fork the hash.
        congestion_q=(
            args.congestion_q
            if args.congestion_weight
            else DEFAULT_CONGESTION_Q
        ),
        ecmp=args.ecmp,
        ecmp_seed=args.ecmp_seed if args.ecmp else 0,
    )


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", choices=ENGINE_NAMES, default="auto",
        help="simulation engine (default auto = the workload kind's "
        "historical engine; vector = the frame-batched NumPy engine "
        "for large fabrics)",
    )


def _add_mapping_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mapping", choices=MAPPING_STRATEGIES, default="checkerboard",
        help="module-to-node mapping strategy (harvest-proportional "
        "places duplicates by expected per-node harvest income)",
    )


def _cmd_bound(args: argparse.Namespace) -> int:
    config = SimulationConfig(platform=PlatformConfig(mesh_width=args.mesh))
    bound = bound_for(config)
    rows = [
        (m, bound.normalized_energies[m], bound.optimal_duplicates[m])
        for m in sorted(bound.normalized_energies)
    ]
    print(
        format_table(
            ["module", "H_i (pJ)", "n_i* (Theorem 1)"],
            rows,
            title=f"Theorem 1 for a {args.mesh}x{args.mesh} mesh",
        )
    )
    print(f"\nupper bound J* = {bound.jobs:.2f} jobs")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = SimulationConfig(
        platform=PlatformConfig(
            mesh_width=args.mesh,
            battery_model=args.battery,
            mapping_strategy=args.mapping,
        ),
        workload=WorkloadConfig(seed=args.seed),
        faults=_fault_config(args),
        harvest=_harvest_config(args),
        routing=args.routing,
        wear_aware=args.wear_weight,
        harvest_aware=args.harvest_weight,
        routing_opts=_routing_options(args),
        engine=args.engine,
    )
    recorder = TraceRecorder() if args.trace else None
    stats = run_simulation(config, recorder)
    if args.json:
        print(json.dumps(stats.summary(), indent=2))
    else:
        rows = list(stats.summary().items())
        print(
            format_table(
                ["metric", "value"],
                rows,
                title=(
                    f"et_sim: {args.routing.upper()} on "
                    f"{args.mesh}x{args.mesh}, {args.battery} battery"
                ),
            )
        )
    if recorder is not None:
        count = dump_trace(
            args.trace,
            recorder.lines(
                meta={
                    "command": "simulate",
                    "label": (
                        f"{args.routing}/{args.mesh}x{args.mesh}"
                    ),
                    "engine": config.resolved_engine(),
                    "routing": args.routing,
                }
            ),
        )
        get_logger().info("trace: %d line(s) -> %s", count, args.trace)
    return 0


def _make_cache(args: argparse.Namespace) -> SweepCache | None:
    """The sweep cache selected by --cache/--cache-dir/--cache-backend."""
    backend = getattr(args, "cache_backend", None)
    if getattr(args, "cache_dir", None) is not None:
        return SweepCache(args.cache_dir, backend=backend)
    if getattr(args, "cache", False):
        return SweepCache(backend=backend)
    return None


def _make_runner(args: argparse.Namespace):
    """Build the sweep executor selected by --workers/--cache-dir."""
    return make_runner(
        getattr(args, "workers", 1),
        cache=_make_cache(args),
        trace=getattr(args, "trace", None) is not None,
    )


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes (1 = sequential, 0 = all cores)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cache finished points under DIR (reruns become no-ops)",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="cache under the default directory "
        "($ETSIM_CACHE_DIR or .etsim_cache)",
    )
    parser.add_argument(
        "--cache-backend", choices=CACHE_BACKENDS, default=None,
        metavar="LAYOUT",
        help="cache storage layout: flat (default; one file per entry), "
        "sharded (two-hex-prefix fan-out for huge caches) or sqlite "
        "(one database file); $ETSIM_CACHE_BACKEND overrides the "
        "default",
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis.sweep import sweep_mesh_sizes

    base = SimulationConfig(
        platform=PlatformConfig(mapping_strategy=args.mapping),
        faults=_fault_config(args),
        harvest=_harvest_config(args),
        wear_aware=args.wear_weight,
        harvest_aware=args.harvest_weight,
        routing_opts=_routing_options(args),
        engine=args.engine,
    )
    widths = tuple(range(args.min_mesh, args.max_mesh + 1))
    writer = TraceWriter(args.trace) if args.trace else None
    hook = None
    if writer is not None:
        def hook(record):
            stats = record.stats
            writer.add(
                stats.extra.get("trace") if stats is not None else None,
                point=record.label,
            )
    try:
        results = sweep_mesh_sizes(
            base, widths=widths, runner=_make_runner(args), hook=hook
        )
    finally:
        if writer is not None:
            writer.close()
            get_logger().info(
                "trace: %d point(s), %d line(s) -> %s",
                writer.points_written, writer.lines_written, args.trace,
            )
    by_mesh: dict[str, dict[str, float]] = {}
    for result in results:
        mesh = result.params["mesh"]
        by_mesh.setdefault(mesh, {})[result.params["routing"]] = (
            result.jobs_fractional
        )
    rows = [
        (
            mesh,
            values.get("ear", 0.0),
            values.get("sdr", 0.0),
            values.get("ear", 0.0) / max(values.get("sdr", 0.0), 1e-9),
        )
        for mesh, values in by_mesh.items()
    ]
    print(
        format_table(
            ["mesh", "EAR jobs", "SDR jobs", "gain"],
            rows,
            title="EAR vs SDR (paper Fig 7)",
        )
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.list:
        rows = [
            (entry.name, entry.description)
            for entry in scenarios().values()
        ]
        print(format_table(["scenario", "description"], rows,
                           title="registered sweep scenarios"))
        return 0
    names = args.scenario or list(scenarios())
    scale = "smoke" if args.smoke else args.scale
    # The fault/harvest flags shape the *base* configuration handed to
    # every scenario; fault and harvest scenarios (fig7-faulty,
    # harvest-motion, ...) override the profile with their own
    # schedules, and the mapping scenario overrides the strategy.
    # Scenarios that exist to compare engines (engine-speed,
    # vector-mesh) pin their own engine per point and win over this
    # base value.
    base = SimulationConfig(
        platform=PlatformConfig(mapping_strategy=args.mapping),
        faults=_fault_config(args),
        harvest=_harvest_config(args),
        wear_aware=args.wear_weight,
        harvest_aware=args.harvest_weight,
        routing_opts=_routing_options(args),
        engine=args.engine,
    )
    logger = get_logger()
    runner = _make_runner(args)
    cache = runner.cache
    writer = TraceWriter(args.trace) if args.trace else None
    emitted: dict[str, list[dict]] = {}
    start = time.perf_counter()
    for name in names:
        points = build_scenario(name, scale=scale, base=base)
        logger.debug("scenario %s: %d point(s)", name, len(points))
        records = runner.run(points)
        if writer is not None:
            for record in records:
                stats = record.stats
                writer.add(
                    stats.extra.get("trace")
                    if stats is not None
                    else None,
                    scenario=name,
                    point=record.label,
                )
        emitted[name] = [record.record(timing=True) for record in records]
        if not args.json:
            rows = [
                (
                    record.label,
                    record.summary["jobs_fractional"],
                    record.summary["lifetime_frames"],
                    record.summary["death_cause"],
                    "cached" if record.cached else "ran",
                )
                for record in records
            ]
            print(format_table(
                ["point", "jobs", "frames", "death", "source"],
                rows,
                title=f"scenario {name} ({scale})",
            ))
            print()
    elapsed = time.perf_counter() - start
    if writer is not None:
        writer.close()
        logger.info(
            "trace: %d point(s), %d line(s) -> %s",
            writer.points_written, writer.lines_written, args.trace,
        )
    if args.json:
        print(json.dumps(emitted, indent=2, sort_keys=True))
    else:
        line = f"{sum(len(v) for v in emitted.values())} points in {elapsed:.1f}s"
        if cache is not None:
            line += (
                f" — cache: {cache.hits} hit(s), {cache.misses} miss(es)"
                f" at {cache.directory}"
            )
        logger.info(line)
    if cache is not None:
        logger.debug(
            "cache IO: %.3fs lookup, %.3fs store (%s backend)",
            cache.time_lookup_s, cache.time_store_s, cache.backend_name,
        )
    return 0


def _fleet_preset_names() -> tuple[str, ...]:
    from .fleet.distribution import FLEET_PRESETS

    return tuple(FLEET_PRESETS)


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .analysis.fleet import fleet_comparison, fleet_summary
    from .fleet import FLEET_PRESETS, fleet_bundle, run_fleet
    from .fleet.shards import (
        run_shard,
        run_sharded_fleet,
        shard_filename,
        shard_spec_for,
        write_shard_state,
    )

    preset = "smoke" if args.smoke else args.preset
    distribution = FLEET_PRESETS[preset]
    size = args.size
    if size is None:
        size = 1000 if args.smoke else 256
    logger = get_logger()

    # The flag matrix: exactly one of the four fleet modes at a time.
    single_shard = (
        args.shard_index is not None or args.shard_count is not None
    )
    if single_shard and (
        args.shard_index is None or args.shard_count is None
    ):
        raise SystemExit(
            "--shard-index and --shard-count must be given together"
        )
    if args.shards is not None and single_shard:
        raise SystemExit(
            "--shards (local pool) and --shard-index/--shard-count "
            "(one shard per host) are mutually exclusive"
        )
    if args.shards is not None and args.trace:
        raise SystemExit(
            "--trace is not supported with --shards (shards run in "
            "worker processes); trace one shard at a time via "
            "--shard-index/--shard-count"
        )
    if args.compare_routing and (args.shards is not None or single_shard):
        raise SystemExit(
            "--compare-routing runs both variants in one process; "
            "combine it with --workers, not with sharding"
        )

    cache = _make_cache(args)

    # --- one shard of a multi-host run: emit a standalone state file
    if single_shard:
        spec = shard_spec_for(size, args.shard_count, args.shard_index)
        writer = TraceWriter(args.trace) if args.trace else None
        heartbeat = Heartbeat(
            total=spec.size,
            label=f"shard {spec.index}/{spec.count} garments",
            logger=logger,
        )

        def shard_progress(record, done, total):
            if writer is not None and record.stats is not None:
                writer.add(
                    record.stats.extra.get("trace"),
                    point=record.label,
                    shard=spec.index,
                    shard_count=spec.count,
                )
            heartbeat(record, done, total)

        try:
            document = run_shard(
                distribution,
                args.fleet_seed,
                size,
                spec,
                workers=args.workers,
                cache=cache,
                chunk_size=args.chunk,
                progress=shard_progress,
                trace=writer is not None,
            )
        finally:
            heartbeat.finish()
            if writer is not None:
                writer.close()
                logger.info(
                    "trace: %d garment(s), %d line(s) -> %s",
                    writer.points_written, writer.lines_written,
                    args.trace,
                )
        out = args.shard_out or shard_filename(spec)
        write_shard_state(out, document)
        logger.info(
            "shard %d/%d: %d garment(s) -> %s (combine the full set "
            "with `repro fleet-merge`)",
            spec.index, spec.count, spec.size, out,
        )
        if args.json:
            print(json.dumps(document, indent=2, sort_keys=True))
        return 0

    # --- local fault-tolerant sharded run on a process pool
    if args.shards is not None:
        if args.shards < 1:
            raise SystemExit(f"--shards must be >= 1, got {args.shards}")
        sharded = run_sharded_fleet(
            distribution,
            size,
            args.fleet_seed,
            args.shards,
            directory=args.shard_dir,
            cache_dir=str(cache.directory) if cache is not None else None,
            cache_backend=cache.backend_name if cache is not None else None,
            chunk_size=args.chunk,
            pool_workers=args.workers or None,
            max_attempts=args.shard_attempts,
            backoff_s=args.shard_backoff,
            timeout_s=args.shard_timeout,
            logger=logger,
        )
        bundle = fleet_bundle(
            distribution,
            size,
            args.fleet_seed,
            sharded.result,
            workers=args.workers,
            shards=sharded.shards,
        )
        if args.json:
            print(json.dumps(bundle, indent=2, sort_keys=True))
        else:
            print(fleet_summary(bundle))
            if sharded.directory:
                logger.info(
                    "shard state + manifest in %s (re-run resumes "
                    "unfinished shards)",
                    sharded.directory,
                )
        return 0

    # --- EAR vs SDR over the same population
    if args.compare_routing:
        bundles: dict[str, dict] = {}
        for routing in ("ear", "sdr"):
            base = SimulationConfig(routing=routing)
            heartbeat = Heartbeat(
                total=size, label=f"{routing} garments", logger=logger
            )
            try:
                result = run_fleet(
                    distribution,
                    size,
                    args.fleet_seed,
                    base=base,
                    workers=args.workers,
                    cache=cache,
                    chunk_size=args.chunk,
                    progress=heartbeat,
                )
            finally:
                heartbeat.finish()
            bundles[routing] = fleet_bundle(
                distribution,
                size,
                args.fleet_seed,
                result,
                workers=args.workers,
                cache=cache,
            )
        if args.json:
            print(json.dumps(bundles, indent=2, sort_keys=True))
        else:
            print(fleet_comparison(bundles))
        return 0

    # --- the single-stream default
    writer = TraceWriter(args.trace) if args.trace else None
    heartbeat = Heartbeat(total=size, label="garments", logger=logger)

    def progress(record, done, total):
        if writer is not None and record.stats is not None:
            writer.add(record.stats.extra.get("trace"), point=record.label)
        heartbeat(record, done, total)

    try:
        result = run_fleet(
            distribution,
            size,
            args.fleet_seed,
            workers=args.workers,
            cache=cache,
            chunk_size=args.chunk,
            progress=progress,
            trace=writer is not None,
        )
    finally:
        # The rate limiter can swallow the last in-band progress line;
        # the terminal line is emitted unconditionally (idempotent).
        heartbeat.finish()
        if writer is not None:
            writer.close()
            logger.info(
                "trace: %d garment(s), %d line(s) -> %s",
                writer.points_written, writer.lines_written, args.trace,
            )
    bundle = fleet_bundle(
        distribution,
        size,
        args.fleet_seed,
        result,
        workers=args.workers,
        cache=cache,
    )
    if args.json:
        print(json.dumps(bundle, indent=2, sort_keys=True))
    else:
        print(fleet_summary(bundle))
        if cache is not None:
            logger.info(
                "cache (%s): %d hit(s), %d miss(es) at %s",
                cache.backend_name, cache.hits, cache.misses,
                cache.directory,
            )
    return 0


def _cmd_fleet_merge(args: argparse.Namespace) -> int:
    from .analysis.fleet import fleet_summary
    from .fleet.shards import load_shard_state, merged_bundle

    documents = [load_shard_state(path) for path in args.files]
    bundle = merged_bundle(documents)
    if args.json:
        print(json.dumps(bundle, indent=2, sort_keys=True))
    else:
        print(fleet_summary(bundle))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .analysis.trace_summary import trace_summary

    lines = load_trace(args.path)
    print(
        trace_summary(
            lines, width=args.width, show_events=args.events
        )
    )
    return 0


def _cmd_battery_curve(args: argparse.Namespace) -> int:
    params = ThinFilmParameters()
    battery = ThinFilmBattery(params)
    rows = []
    step_pj = params.capacity_pj / args.points
    while battery.alive:
        rows.append(
            (
                round(battery.delivered_pj, 1),
                round(battery.open_circuit_voltage, 3),
                round(battery.voltage, 3),
            )
        )
        battery.draw(step_pj, args.step_cycles)
        battery.rest(args.step_cycles * 4)
    print(
        format_table(
            ["delivered (pJ)", "open-circuit (V)", "loaded (V)"],
            rows,
            title="Li-free thin-film discharge curve (paper Fig 2)",
        )
    )
    return 0


def _cmd_regen_golden(args: argparse.Namespace) -> int:
    """Re-run every golden smoke point and rewrite its fixture.

    Run after an *intentional* behaviour change (new summary key,
    engine-semantics fix) — and bump ``CACHE_SCHEMA_VERSION``
    alongside — instead of hand-editing the stored JSON documents.

    With ``--check`` nothing is written: each freshly-simulated payload
    is compared against the stored fixture and the command exits
    non-zero on any drift (or missing fixture).  CI runs this so a
    behaviour change that forgot to regenerate the fixtures fails the
    build as a named staleness error instead of a confusing test diff.
    """
    import pathlib

    directory = pathlib.Path(args.dir)
    if not args.check:
        directory.mkdir(parents=True, exist_ok=True)
    stale = 0
    for scenario_name, label, filename in GOLDEN_SMOKE_POINTS:
        matches = [
            point
            for point in build_scenario(scenario_name, scale="smoke")
            if point.label == label
        ]
        if len(matches) != 1:
            raise SystemExit(
                f"golden point {label!r} missing from scenario "
                f"{scenario_name!r}"
            )
        payload = {
            "scenario": scenario_name,
            "scale": "smoke",
            "label": label,
            "summary": run_simulation(matches[0].config).summary(),
        }
        path = directory / filename
        if args.check:
            if not path.exists():
                print(f"MISSING {path}")
                stale += 1
                continue
            stored = json.loads(path.read_text(encoding="utf-8"))
            if stored != payload:
                print(f"STALE   {path}")
                stale += 1
            else:
                print(f"ok      {path}")
            continue
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {path}")
    if args.check and stale:
        print(
            f"{stale} stale golden fixture(s); run "
            "`python -m repro regen-golden` and commit the result"
        )
        return 1
    return 0


def _cmd_mapping(args: argparse.Namespace) -> int:
    platform = PlatformConfig(
        mesh_width=args.mesh, mapping_strategy=args.strategy
    )
    topology = platform.make_topology()
    schedule = build_harvest_schedule(
        _harvest_config(args), topology, platform.num_mesh_nodes
    )
    mapping = platform.make_mapping(
        topology,
        normalized_energies={1: 2367.9, 2: 1710.3, 3: 3225.7},
        income_weights=schedule.expected_income_weights(),
    )
    print(
        f"{args.strategy} mapping of AES onto a "
        f"{args.mesh}x{args.mesh} mesh (paper Fig 3b):\n"
    )
    for y in range(args.mesh, 0, -1):
        row = []
        for x in range(1, args.mesh + 1):
            node = node_id(x, y, args.mesh)
            row.append(str(mapping.module_of(node)))
        print("   " + "  ".join(row))
    counts = mapping.duplicate_counts()
    print("\nduplicates: " + ", ".join(f"n{m}={c}" for m, c in counts.items()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="etsim",
        description=(
            "et_sim — energy-aware routing for e-textiles "
            f"(reproduction of: {PAPER_CITATION})"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    _add_logging_arguments(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    bound = sub.add_parser("bound", help="evaluate Theorem 1")
    _add_mesh_argument(bound)
    bound.set_defaults(func=_cmd_bound)

    simulate = sub.add_parser("simulate", help="run one simulation")
    _add_mesh_argument(simulate)
    simulate.add_argument(
        "--routing", choices=("ear", "sdr"), default="ear"
    )
    simulate.add_argument(
        "--battery", choices=("thin-film", "ideal"), default="thin-film"
    )
    _add_mapping_argument(simulate)
    _add_engine_argument(simulate)
    simulate.add_argument("--seed", type=int, default=2005)
    simulate.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    _add_fault_arguments(simulate)
    _add_harvest_arguments(simulate)
    _add_routing_arguments(simulate)
    _add_trace_argument(simulate)
    _add_logging_arguments(simulate)
    simulate.set_defaults(func=_cmd_simulate)

    sweep = sub.add_parser("sweep", help="EAR vs SDR across mesh sizes")
    sweep.add_argument("--min-mesh", type=int, default=4)
    sweep.add_argument("--max-mesh", type=int, default=8)
    _add_mapping_argument(sweep)
    _add_engine_argument(sweep)
    _add_runner_arguments(sweep)
    _add_fault_arguments(sweep)
    _add_harvest_arguments(sweep)
    _add_routing_arguments(sweep)
    _add_trace_argument(sweep)
    _add_logging_arguments(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    bench = sub.add_parser(
        "bench",
        help="run registered sweep scenarios (cached, parallelisable)",
    )
    bench.add_argument(
        "--scenario", action="append", metavar="NAME",
        help="scenario to run (repeatable; default: all registered)",
    )
    bench.add_argument(
        "--scale", choices=("smoke", "quick", "full"), default="full",
        help="grid scale (default full = the paper's grids)",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="shorthand for --scale smoke (the CI entry point)",
    )
    bench.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    bench.add_argument(
        "--json", action="store_true", help="emit records as JSON"
    )
    _add_mapping_argument(bench)
    _add_engine_argument(bench)
    _add_runner_arguments(bench)
    _add_fault_arguments(bench)
    _add_harvest_arguments(bench)
    _add_routing_arguments(bench)
    _add_trace_argument(bench)
    _add_logging_arguments(bench)
    bench.set_defaults(func=_cmd_bench)

    fleet = sub.add_parser(
        "fleet",
        help="population-scale fleet sweep with streaming aggregation",
    )
    fleet.add_argument(
        "--size", type=int, default=None, metavar="N",
        help="garments in the fleet (default 256, or 1000 with --smoke)",
    )
    fleet.add_argument(
        "--fleet-seed", type=int, default=2005, metavar="S",
        help="fleet seed; with the preset it fully determines every "
        "garment (default 2005)",
    )
    fleet.add_argument(
        "--preset", choices=sorted(_fleet_preset_names()),
        default="default",
        help="wearer/lot distribution preset (default default)",
    )
    fleet.add_argument(
        "--smoke", action="store_true",
        help="shorthand for --preset smoke with a 1000-garment default "
        "size (the CI entry point)",
    )
    fleet.add_argument(
        "--chunk", type=int, default=128, metavar="N",
        help="garments in flight at once — the memory bound (default 128)",
    )
    fleet.add_argument(
        "--json", action="store_true",
        help="emit the aggregate bundle as JSON",
    )
    fleet.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="split the fleet into N disjoint shards and run them on a "
        "local process pool with per-shard retry and manifest resume "
        "(merged aggregate bit-identical to a single stream)",
    )
    fleet.add_argument(
        "--shard-dir", metavar="DIR", default=None,
        help="with --shards: keep shard state files + manifest under "
        "DIR so an interrupted run resumes (default: ephemeral)",
    )
    fleet.add_argument(
        "--shard-index", type=int, default=None, metavar="I",
        help="run only shard I of a --shard-count split and write its "
        "standalone state file (one-shard-per-host mode; merge with "
        "`repro fleet-merge`)",
    )
    fleet.add_argument(
        "--shard-count", type=int, default=None, metavar="N",
        help="total shards of the multi-host split (with --shard-index)",
    )
    fleet.add_argument(
        "--shard-out", metavar="FILE", default=None,
        help="state-file path for --shard-index mode (default "
        "shard_IIIIofNNNN.json)",
    )
    fleet.add_argument(
        "--shard-attempts", type=int, default=3, metavar="K",
        help="with --shards: runs each shard may consume before the "
        "driver gives up (default 3)",
    )
    fleet.add_argument(
        "--shard-backoff", type=float, default=0.5, metavar="S",
        help="with --shards: first retry delay in seconds, doubling "
        "each round (default 0.5)",
    )
    fleet.add_argument(
        "--shard-timeout", type=float, default=None, metavar="S",
        help="with --shards: per-round wall-clock limit; shards still "
        "running are failed and retried (default: none)",
    )
    fleet.add_argument(
        "--compare-routing", action="store_true",
        help="run the same population under EAR and SDR and print the "
        "survival-curve comparison",
    )
    _add_runner_arguments(fleet)
    _add_trace_argument(fleet)
    _add_logging_arguments(fleet)
    fleet.set_defaults(func=_cmd_fleet)

    fleet_merge = sub.add_parser(
        "fleet-merge",
        help="merge standalone shard state files into one fleet bundle",
    )
    fleet_merge.add_argument(
        "files", nargs="+", metavar="STATE.json",
        help="shard state files written by `repro fleet --shard-index` "
        "or kept under a --shard-dir (the full set of one fleet)",
    )
    fleet_merge.add_argument(
        "--json", action="store_true",
        help="emit the merged aggregate bundle as JSON",
    )
    _add_logging_arguments(fleet_merge)
    fleet_merge.set_defaults(func=_cmd_fleet_merge)

    trace = sub.add_parser(
        "trace",
        help="render a --trace JSONL capture as a timeline + report",
    )
    trace.add_argument("path", help="trace file written by --trace")
    trace.add_argument(
        "--width", type=int, default=64, metavar="N",
        help="timeline width in character cells (default 64)",
    )
    trace.add_argument(
        "--events", action="store_true",
        help="also list every discrete event line by line",
    )
    _add_logging_arguments(trace)
    trace.set_defaults(func=_cmd_trace)

    curve = sub.add_parser(
        "battery-curve", help="thin-film discharge curve"
    )
    curve.add_argument("--points", type=int, default=24)
    curve.add_argument("--step-cycles", type=int, default=2000)
    curve.set_defaults(func=_cmd_battery_curve)

    mapping = sub.add_parser("mapping", help="module mapping of a mesh")
    _add_mesh_argument(mapping)
    mapping.add_argument(
        "--strategy",
        choices=MAPPING_STRATEGIES,
        default="checkerboard",
    )
    # Income-picture flags let harvest-proportional see the expected
    # per-node income (profile, amplitude, hardware heterogeneity).
    _add_income_arguments(mapping)
    mapping.set_defaults(func=_cmd_mapping)

    regen = sub.add_parser(
        "regen-golden",
        help="re-run the golden smoke points and rewrite their fixtures",
    )
    regen.add_argument(
        "--dir", default="tests/golden", metavar="DIR",
        help="fixture directory (default tests/golden)",
    )
    regen.add_argument(
        "--check", action="store_true",
        help="compare instead of write; exit 1 when any fixture is "
        "stale or missing (the CI staleness gate)",
    )
    regen.set_defaults(func=_cmd_regen_golden)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    setup_logging(
        verbose=getattr(args, "verbose", False),
        quiet=getattr(args, "quiet", False),
    )
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
