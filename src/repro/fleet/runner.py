"""Streaming fleet driver: sample, simulate, aggregate, discard.

``run_fleet`` pushes a fleet of any size through the existing sweep
runner in bounded-size chunks.  Each chunk's points are sampled on the
fly from the :class:`~repro.fleet.distribution.FleetDistribution`,
evaluated (optionally on a process pool, optionally against a shared
:class:`~repro.orchestration.cache.SweepCache` of any backend), folded
into the :class:`~repro.fleet.aggregate.FleetAggregator` through the
runner's progress hook, and then dropped — memory stays O(chunk), not
O(fleet).

Because the aggregator's canonical layer is order-independent, the
exported aggregate is bit-identical whatever the worker count, the
chunk size, the completion order, or the shard split.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..config import SimulationConfig
from ..errors import ConfigurationError
from ..orchestration.cache import SweepCache
from ..orchestration.runner import SweepRecord, make_runner
from .aggregate import FleetAggregator
from .distribution import FleetDistribution

#: Version stamp of the exported fleet bundle document.
FLEET_BUNDLE_SCHEMA = 1

#: Fleet progress callback: (record, garments done, fleet size).
FleetProgress = Callable[[SweepRecord, int, int], None]


def aggregator_for(distribution: FleetDistribution) -> FleetAggregator:
    """An aggregator bucketed to fit the distribution's value ranges.

    Derived deterministically from the distribution alone, so every
    shard of one fleet builds an identical (hence mergeable) spec.
    """
    lifetime_buckets = 128
    bucket_frames = max(1.0, float(distribution.max_frames) / lifetime_buckets)
    if distribution.max_jobs is not None:
        jobs_bucket = max(distribution.max_jobs / 64.0, 1.0 / 64.0)
        jobs_buckets = 64
    else:
        jobs_bucket, jobs_buckets = 0.5, 256
    return FleetAggregator(
        lifetime_bucket_frames=bucket_frames,
        lifetime_buckets=lifetime_buckets,
        jobs_bucket=jobs_bucket,
        jobs_buckets=jobs_buckets,
    )


@dataclass
class FleetRunResult:
    """Outcome of one (possibly sharded) fleet run.

    Attributes:
        aggregator: The streaming aggregate over every garment seen.
        size: Garments aggregated by this run.
        executed: Garments actually simulated.
        cached: Garments served from the sweep cache.
        elapsed_s: Wall-clock seconds of the whole run.
    """

    aggregator: FleetAggregator
    size: int
    executed: int
    cached: int
    elapsed_s: float


def run_fleet(
    distribution: FleetDistribution,
    size: int,
    fleet_seed: int,
    *,
    base: SimulationConfig | None = None,
    start: int = 0,
    workers: int = 1,
    cache: SweepCache | None = None,
    chunk_size: int = 128,
    aggregator: FleetAggregator | None = None,
    progress: FleetProgress | None = None,
    trace: bool = False,
) -> FleetRunResult:
    """Stream garments ``start .. start+size`` through the sweep runner.

    Args:
        distribution: The wearer/lot distribution to sample from.
        size: Number of garments this run covers.
        fleet_seed: Seed of the whole fleet; with ``start`` it fully
            determines every garment (shards of one fleet share the
            seed and split the index range).
        base: Configuration the sampled axes are grafted onto.
        start: First garment index (shard offset).
        workers: Sweep-runner worker processes (1 = sequential,
            0 = all cores).
        cache: Optional sweep cache (any backend).
        chunk_size: Garments in flight at once — the memory bound.
        aggregator: Fold into an existing aggregator (defaults to a
            fresh :func:`aggregator_for` the distribution).
        progress: Optional per-record callback for live reporting.
        trace: Capture a telemetry trace for every executed garment
            (lands in ``record.stats.extra["trace"]``; collect it in
            ``progress`` — records are dropped after aggregation).
    """
    if size < 0:
        raise ConfigurationError(f"fleet size must be >= 0, got {size}")
    if chunk_size < 1:
        raise ConfigurationError(
            f"chunk size must be >= 1, got {chunk_size}"
        )
    expected = aggregator_for(distribution)
    if aggregator is None:
        aggregator = expected
    elif aggregator.spec_dict() != expected.spec_dict():
        # A caller-supplied aggregator (or one rebuilt from a shard
        # state file) bucketed for a *different* distribution would
        # fold new records into misaligned histograms — silently
        # garbage quantiles and survival curves.  Refuse instead.
        raise ConfigurationError(
            "supplied aggregator's bucket spec does not match this "
            f"distribution: {aggregator.spec_dict()} vs expected "
            f"{expected.spec_dict()} (derive it with "
            "aggregator_for(distribution))"
        )
    runner = make_runner(workers, cache=cache, trace=trace)
    began = time.perf_counter()
    done = 0
    executed = 0
    cached = 0

    def consume(record: SweepRecord) -> None:
        nonlocal done, executed, cached
        aggregator.observe(record)
        done += 1
        if record.cached:
            cached += 1
        else:
            executed += 1
        if progress is not None:
            progress(record, done, size)

    for lo in range(start, start + size, chunk_size):
        hi = min(lo + chunk_size, start + size)
        points = distribution.points(fleet_seed, range(lo, hi), base)
        # Records stream into the aggregator through the hook; the
        # returned list is chunk-bounded and dropped immediately.
        runner.run(points, hook=consume)

    return FleetRunResult(
        aggregator=aggregator,
        size=size,
        executed=executed,
        cached=cached,
        elapsed_s=time.perf_counter() - began,
    )


def fleet_bundle(
    distribution: FleetDistribution,
    size: int,
    fleet_seed: int,
    result: FleetRunResult,
    *,
    workers: int | None = None,
    cache: SweepCache | None = None,
    shards: list[dict] | None = None,
) -> dict:
    """The exported fleet document.

    The ``aggregate`` section is the canonical artifact: bit-identical
    for one ``(fleet_seed, size, distribution)`` whatever the worker
    count, completion order or shard split.  ``stream`` (live
    percentile estimates with their provenance) and ``run`` (timings,
    cache traffic — including the cache's hit/miss/IO-time counters
    when ``cache`` is passed — and the per-shard breakdown of a
    sharded run when ``shards`` is passed) are diagnostics of *this*
    run and carry no such guarantee.
    """
    run: dict = {
        "workers": workers,
        "executed": result.executed,
        "cached": result.cached,
        "elapsed_s": round(result.elapsed_s, 6),
    }
    if cache is not None:
        run["cache"] = cache.counters()
    if shards is not None:
        run["shards"] = shards
    return {
        "schema": FLEET_BUNDLE_SCHEMA,
        "fleet": {
            "preset": distribution.name,
            "seed": fleet_seed,
            "size": size,
            "distribution": distribution.to_dict(),
        },
        "aggregate": result.aggregator.aggregate(),
        "stream": result.aggregator.stream_view(),
        "run": run,
    }
