"""O(1)-memory online statistics for population-scale fleet sweeps.

A fleet run streams thousands to millions of per-garment
:class:`~repro.orchestration.runner.SweepRecord` summaries through one
:class:`FleetAggregator`.  Nothing per-garment is retained: the
aggregator's state is a fixed set of scalars, five-marker quantile
estimators and fixed-width histograms, so its memory footprint is
independent of the fleet size.

The state is split into two layers with different guarantees:

* the **canonical** layer — counts, exactly-rounded sums (Shewchuk
  partials, so floating-point addition order cannot change the result),
  min/max, death-cause tallies and fixed-bin histograms — is
  *order-independent* and *mergeable*: feeding the same records in any
  order, through any shard split, produces a bit-identical
  :meth:`FleetAggregator.aggregate` document.  This layer is what lands
  in the exported fleet bundle.
* the **stream** layer — P² (Jain & Chlamtac) running percentile
  estimators — is a low-latency live view of the quantiles as the
  stream arrives.  P² marker updates depend on arrival order by
  construction, so this view is reported separately
  (:meth:`FleetAggregator.stream_view`) and is *not* part of the
  canonical document or of the merge identity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError

#: Version stamp of the serialised aggregator state; bump when the
#: state layout or the canonical-aggregate fields change.
FLEET_STATE_SCHEMA = 1

#: The canonical percentiles reported for every metric.
FLEET_PERCENTILES = (5.0, 50.0, 95.0)


# ----------------------------------------------------------------------
# Exactly-rounded streaming sum
# ----------------------------------------------------------------------
class ExactSum:
    """Order-independent streaming float sum (Shewchuk partials).

    Keeps the running sum as a list of non-overlapping doubles whose
    mathematical sum is *exact* (the same representation
    :func:`math.fsum` builds internally).  Because the tracked value is
    exact, the rounded :attr:`value` cannot depend on the order the
    addends arrived in — which is what makes fleet aggregation
    bit-identical across worker counts, completion orders and shard
    splits.  The partials list is bounded by the exponent range of a
    double (a few dozen entries), so the state stays O(1).
    """

    __slots__ = ("partials",)

    def __init__(self, partials: list[float] | None = None):
        self.partials: list[float] = list(partials or [])

    def add(self, x: float) -> None:
        x = float(x)
        i = 0
        for y in self.partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                self.partials[i] = lo
                i += 1
            x = hi
        del self.partials[i:]
        self.partials.append(x)

    def merge(self, other: "ExactSum") -> None:
        """Fold another exact sum in (exact + exact stays exact)."""
        for partial in other.partials:
            self.add(partial)

    @property
    def value(self) -> float:
        """The exactly-rounded float value of the sum."""
        return math.fsum(self.partials)

    def to_list(self) -> list[float]:
        return list(self.partials)


# ----------------------------------------------------------------------
# P² running quantile estimator
# ----------------------------------------------------------------------
class P2Quantile:
    """The P² algorithm (Jain & Chlamtac 1985) for one quantile.

    Tracks five markers whose heights approximate the ``p``-quantile of
    everything observed so far, in O(1) memory and O(1) time per
    observation.  Until five observations arrive the estimate is the
    exact empirical quantile of the buffered values.

    The estimate depends on arrival order (markers move by local
    parabolic interpolation), so this class powers the *stream view* of
    a fleet aggregate, never the canonical mergeable document.
    """

    __slots__ = ("p", "heights", "positions", "desired", "count")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ConfigurationError(f"quantile must lie in (0, 1), got {p}")
        self.p = p
        self.heights: list[float] = []  # buffer until 5, then markers
        self.positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self.desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self.count = 0

    def add(self, x: float) -> None:
        x = float(x)
        self.count += 1
        if self.count <= 5:
            self.heights.append(x)
            if self.count == 5:
                self.heights.sort()
            return

        q, n = self.heights, self.positions
        # Locate the cell and update the extreme markers.
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        increments = (0.0, self.p / 2.0, self.p, (1.0 + self.p) / 2.0, 1.0)
        for i in range(5):
            self.desired[i] += increments[i]

        # Nudge the three interior markers toward their desired ranks.
        for i in (1, 2, 3):
            d = self.desired[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                d = 1.0 if d > 0 else -1.0
                candidate = self._parabolic(i, d)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, d)
                q[i] = candidate
                n[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self.heights, self.positions
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d)
            * (q[i + 1] - q[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d)
            * (q[i] - q[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self.heights, self.positions
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    def estimate(self) -> float | None:
        """The current quantile estimate (None before any observation)."""
        if self.count == 0:
            return None
        if self.count <= 5:
            ordered = sorted(self.heights)
            rank = self.p * (len(ordered) - 1)
            low = int(rank)
            high = min(low + 1, len(ordered) - 1)
            frac = rank - low
            value = ordered[low] * (1.0 - frac) + ordered[high] * frac
            # The lerp can round a hair outside its endpoints
            # (x*0.95 + x*0.05 need not equal x): clamp it back.
            return min(max(value, ordered[low]), ordered[high])
        return self.heights[2]


# ----------------------------------------------------------------------
# Fixed-bin histogram (canonical quantiles + survival curve)
# ----------------------------------------------------------------------
class BucketHistogram:
    """Fixed-width bucket counts over ``[0, buckets * width)``.

    Values at or beyond the last edge land in a single overflow bucket,
    so the array length never grows.  Counts are integers, which makes
    merging exact and associative — the canonical quantiles and the
    survival curve both derive from this structure.
    """

    __slots__ = ("width", "buckets", "counts")

    def __init__(
        self,
        width: float,
        buckets: int,
        counts: list[int] | None = None,
    ):
        if width <= 0:
            raise ConfigurationError(f"bucket width must be > 0, got {width}")
        if buckets < 1:
            raise ConfigurationError(f"need >= 1 bucket, got {buckets}")
        self.width = float(width)
        self.buckets = int(buckets)
        # counts[buckets] is the overflow bucket.
        self.counts = list(counts) if counts is not None else [0] * (
            buckets + 1
        )
        if len(self.counts) != self.buckets + 1:
            raise ConfigurationError(
                f"histogram needs {self.buckets + 1} counts, "
                f"got {len(self.counts)}"
            )

    def add(self, x: float) -> None:
        index = int(x // self.width) if x > 0 else 0
        self.counts[min(index, self.buckets)] += 1

    def merge(self, other: "BucketHistogram") -> None:
        if (self.width, self.buckets) != (other.width, other.buckets):
            raise ConfigurationError(
                "cannot merge histograms with different bucketing: "
                f"{self.width}x{self.buckets} vs {other.width}x{other.buckets}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c

    @property
    def total(self) -> int:
        return sum(self.counts)

    def quantile(
        self, q: float, lo: float | None = None, hi: float | None = None
    ) -> float | None:
        """Interpolated ``q``-quantile (``q`` in [0, 100]) from counts.

        ``lo``/``hi`` clamp the result to the exact observed min/max
        (tracked separately by the aggregator), which pins degenerate
        streams — every value identical — to that value instead of a
        bucket-interpolated artefact, and bounds the overflow bucket.
        """
        total = self.total
        if total == 0:
            return None
        target = q / 100.0 * total
        cumulative = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if cumulative + c >= target:
                left = i * self.width
                right = left + self.width
                if i == self.buckets and hi is not None:
                    right = max(hi, left)
                fraction = (target - cumulative) / c
                value = left + fraction * (right - left)
                if lo is not None:
                    value = max(value, lo)
                if hi is not None:
                    value = min(value, hi)
                return value
            cumulative += c
        # Only reachable for q == 0 on pathological inputs.
        return lo

    def survivors(self) -> list[int]:
        """``survivors[i]`` = observations >= edge ``i * width``.

        Monotone non-increasing by construction (each entry drops the
        preceding bucket's count), with ``survivors[0]`` == total.
        """
        remaining = self.total
        out = []
        for c in self.counts:
            out.append(remaining)
            remaining -= c
        return out[: self.buckets + 1]

    def edges(self) -> list[float]:
        return [i * self.width for i in range(self.buckets + 1)]


# ----------------------------------------------------------------------
# Per-metric stream statistics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetricSpec:
    """Bucketing of one aggregated metric."""

    name: str
    bucket_width: float
    buckets: int


class MetricStat:
    """Canonical (mergeable) + stream (P²) statistics of one metric."""

    __slots__ = ("spec", "count", "total", "minimum", "maximum",
                 "histogram", "p2")

    def __init__(self, spec: MetricSpec):
        self.spec = spec
        self.count = 0
        self.total = ExactSum()
        self.minimum: float | None = None
        self.maximum: float | None = None
        self.histogram = BucketHistogram(spec.bucket_width, spec.buckets)
        self.p2 = {p: P2Quantile(p / 100.0) for p in FLEET_PERCENTILES}

    def add(self, x: float) -> None:
        x = float(x)
        self.count += 1
        self.total.add(x)
        self.minimum = x if self.minimum is None else min(self.minimum, x)
        self.maximum = x if self.maximum is None else max(self.maximum, x)
        self.histogram.add(x)
        for estimator in self.p2.values():
            estimator.add(x)

    def merge(self, other: "MetricStat") -> None:
        if self.spec != other.spec:
            raise ConfigurationError(
                f"cannot merge metric {self.spec} with {other.spec}"
            )
        self.count += other.count
        self.total.merge(other.total)
        for bound, pick in (("minimum", min), ("maximum", max)):
            ours, theirs = getattr(self, bound), getattr(other, bound)
            if theirs is not None:
                setattr(
                    self, bound,
                    theirs if ours is None else pick(ours, theirs),
                )
        self.histogram.merge(other.histogram)
        # P² states are stream-order artefacts; a merged aggregator has
        # no single stream, so the live estimators reset.  The reported
        # stream view then falls back to the canonical histogram
        # quantiles (see stream_estimates) instead of going blank.
        self.p2 = {p: P2Quantile(p / 100.0) for p in FLEET_PERCENTILES}

    # ------------------------------------------------------------------
    def canonical(self) -> dict:
        """Order-independent summary of this metric."""
        out: dict = {
            "count": self.count,
            "mean": self.total.value / self.count if self.count else None,
            "min": self.minimum,
            "max": self.maximum,
        }
        for p in FLEET_PERCENTILES:
            out[f"p{p:g}"] = self.histogram.quantile(
                p, lo=self.minimum, hi=self.maximum
            )
        return out

    def stream_source(self) -> str:
        """Where the reported stream percentiles come from.

        ``"p2"`` while a live single-stream P² state exists,
        ``"histogram"`` after a merge or state reload discarded it (the
        canonical bucket quantiles stand in), ``"empty"`` before any
        observation.
        """
        if any(est.count for est in self.p2.values()):
            return "p2"
        return "histogram" if self.count else "empty"

    def stream_estimates(self) -> dict:
        if self.stream_source() == "histogram":
            # Merged/reloaded aggregators have no single arrival order
            # for P² to track; derive the reported percentiles from the
            # canonical histogram so sharded runs still report p5/p50/
            # p95 instead of None.
            return {
                f"p{p:g}": self.histogram.quantile(
                    p, lo=self.minimum, hi=self.maximum
                )
                for p in FLEET_PERCENTILES
            }
        return {f"p{p:g}": est.estimate() for p, est in self.p2.items()}

    def state(self) -> dict:
        return {
            "spec": {
                "name": self.spec.name,
                "bucket_width": self.spec.bucket_width,
                "buckets": self.spec.buckets,
            },
            "count": self.count,
            "total_partials": self.total.to_list(),
            "min": self.minimum,
            "max": self.maximum,
            "histogram": list(self.histogram.counts),
        }

    @classmethod
    def from_state(cls, raw: dict) -> "MetricStat":
        spec = MetricSpec(**raw["spec"])
        stat = cls(spec)
        stat.count = int(raw["count"])
        stat.total = ExactSum(raw["total_partials"])
        stat.minimum = raw["min"]
        stat.maximum = raw["max"]
        stat.histogram = BucketHistogram(
            spec.bucket_width, spec.buckets, raw["histogram"]
        )
        return stat


# ----------------------------------------------------------------------
# The fleet aggregator
# ----------------------------------------------------------------------
#: The two summary metrics every fleet aggregates.
FLEET_METRICS = ("lifetime_frames", "jobs_fractional")


class FleetAggregator:
    """Streaming aggregate over per-garment sweep records.

    Consumes records as the runner's progress hook delivers them —
    completion order, cache-hits-first, shard-local order, anything —
    and maintains the canonical statistics described in the module
    docstring.  ``merge`` folds another aggregator (built with the same
    metric specs) in associatively, so shards running on separate
    processes or hosts combine into the same canonical aggregate a
    single stream would have produced.

    Args:
        lifetime_bucket_frames: Survival-curve/histogram bucket width
            in frames.
        lifetime_buckets: Number of lifetime buckets before overflow.
        jobs_bucket: Histogram bucket width in (fractional) jobs.
        jobs_buckets: Number of jobs buckets before overflow.
    """

    def __init__(
        self,
        lifetime_bucket_frames: float = 64.0,
        lifetime_buckets: int = 128,
        jobs_bucket: float = 0.25,
        jobs_buckets: int = 64,
    ):
        self.metrics = {
            "lifetime_frames": MetricStat(
                MetricSpec(
                    "lifetime_frames", lifetime_bucket_frames,
                    lifetime_buckets,
                )
            ),
            "jobs_fractional": MetricStat(
                MetricSpec("jobs_fractional", jobs_bucket, jobs_buckets)
            ),
        }
        self.death_causes: dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self.metrics["lifetime_frames"].count

    def observe(self, record) -> None:
        """Fold one garment's record in.

        Accepts a :class:`~repro.orchestration.runner.SweepRecord` or a
        bare summary dict; only the summary is read, and nothing of the
        record is retained.
        """
        summary = getattr(record, "summary", record)
        for name, stat in self.metrics.items():
            stat.add(summary[name])
        cause = str(summary.get("death_cause", "unknown"))
        self.death_causes[cause] = self.death_causes.get(cause, 0) + 1

    def spec_dict(self) -> dict:
        """The bucketing of every metric (JSON-safe, comparable).

        Two aggregators are mergeable exactly when their spec dicts are
        equal; :func:`~repro.fleet.runner.run_fleet` and the shard
        merge validate against this before any counts combine.
        """
        return {
            name: {
                "bucket_width": stat.spec.bucket_width,
                "buckets": stat.spec.buckets,
            }
            for name, stat in sorted(self.metrics.items())
        }

    def merge(self, other: "FleetAggregator") -> "FleetAggregator":
        """Fold another shard's aggregator into this one (in place).

        Raises :class:`~repro.errors.ConfigurationError` when the two
        aggregators track different metrics or bucket their histograms
        differently — mismatched specs would merge into garbage
        statistics, so the merge is strict.
        """
        if set(self.metrics) != set(other.metrics):
            raise ConfigurationError(
                "cannot merge fleet aggregators tracking different "
                f"metrics: {sorted(self.metrics)} vs "
                f"{sorted(other.metrics)}"
            )
        if self.spec_dict() != other.spec_dict():
            raise ConfigurationError(
                "cannot merge fleet aggregators with mismatched bucket "
                f"specs: {self.spec_dict()} vs {other.spec_dict()} — "
                "shards of one fleet must derive their aggregator from "
                "the same distribution (aggregator_for)"
            )
        for name, stat in self.metrics.items():
            stat.merge(other.metrics[name])
        for cause, n in other.death_causes.items():
            self.death_causes[cause] = self.death_causes.get(cause, 0) + n
        return self

    # ------------------------------------------------------------------
    def aggregate(self) -> dict:
        """The canonical (order-independent, mergeable) aggregate."""
        lifetime = self.metrics["lifetime_frames"]
        return {
            "count": self.count,
            "metrics": {
                name: stat.canonical()
                for name, stat in sorted(self.metrics.items())
            },
            "death_causes": dict(sorted(self.death_causes.items())),
            "survival": {
                "bucket_frames": lifetime.spec.bucket_width,
                "edges": lifetime.histogram.edges(),
                "survivors": lifetime.histogram.survivors(),
            },
        }

    def stream_view(self) -> dict:
        """Live percentile estimates plus their provenance.

        While a single stream exists the estimates are the P² markers
        in arrival order (``source: "p2"``).  A merged or reloaded
        aggregator has no single stream, so the estimates fall back to
        the canonical histogram quantiles and are flagged
        ``source: "histogram"`` — callers (``fleet_summary``) surface
        that flag instead of reporting None/NaN percentiles.
        """
        return {
            name: {**stat.stream_estimates(), "source": stat.stream_source()}
            for name, stat in sorted(self.metrics.items())
        }

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serialisable mergeable state (ships between shard hosts)."""
        return {
            "schema": FLEET_STATE_SCHEMA,
            "metrics": {
                name: stat.state() for name, stat in self.metrics.items()
            },
            "death_causes": dict(sorted(self.death_causes.items())),
        }

    @classmethod
    def from_state(cls, raw: dict) -> "FleetAggregator":
        if raw.get("schema") != FLEET_STATE_SCHEMA:
            raise ConfigurationError(
                "unsupported fleet aggregator state schema "
                f"{raw.get('schema')!r} (expected {FLEET_STATE_SCHEMA})"
            )
        aggregator = cls.__new__(cls)
        aggregator.metrics = {
            name: MetricStat.from_state(state)
            for name, state in raw["metrics"].items()
        }
        aggregator.death_causes = {
            str(k): int(v) for k, v in raw["death_causes"].items()
        }
        missing = set(FLEET_METRICS) - set(aggregator.metrics)
        if missing:
            raise ConfigurationError(
                f"fleet state missing metrics: {sorted(missing)}"
            )
        return aggregator
