"""Wearer/lot distributions: sampling per-garment configurations.

One simulation run is one garment.  A fleet is a *population* of
garments whose configurations vary the way a production fleet's would:
wearers differ in fabric size and activity level (how much motion
income their harvesters see), in how often the garment is washed
(transient link degradation), and the harvest hardware itself comes
from manufacturing lots with per-patch gain spread.

:class:`FleetDistribution` describes those axes as plain ranges and
weights, and deterministically expands ``(fleet_seed, index)`` into the
``index``-th garment's full :class:`~repro.config.SimulationConfig`.
Every sample is reproducible from the pair alone — no sequential state
— so shards can draw disjoint index ranges of the same fleet without
coordination, and any single garment can be re-run in isolation.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, replace

from ..config import ENGINE_NAMES, SimulationConfig
from ..errors import ConfigurationError
from ..faults.config import FaultConfig
from ..harvest.config import HARVEST_PROFILES, HarvestConfig, HarvestHardware
from ..orchestration.runner import SweepPoint
from ..orchestration.scenarios import derive_seed


@dataclass(frozen=True)
class FleetDistribution:
    """Distribution over per-garment configurations.

    Attributes:
        name: Preset name (mixed into every per-garment seed, so two
            presets never share garment draws even at equal seeds).
        widths / width_weights: Garment fabric sizes and their relative
            frequencies in the population.
        engines: Engine names sampled uniformly per garment (all
            behaviour-equivalent by the cross-engine property suite;
            sampling them spreads fleet load across code paths and
            keeps every engine honest at population scale).
        harvest_fraction: Fraction of garments that carry harvesters at
            all.
        harvest_profile: Income profile of harvesting garments.
        amplitude_low / amplitude_high: Wearer activity band — peak
            per-node income (pJ/frame) is drawn uniformly from it.
        gain_spread_low / gain_spread_high: Manufacturing-lot band for
            the per-patch gain spread of the harvest hardware.
        equipped_fraction: Fraction of a harvesting garment's nodes
            that physically carry a generator.
        wash_fraction: Fraction of garments seeing wash-cycle link
            degradation.
        wash_intensity_low / wash_intensity_high: Wash-frequency band —
            the fault-schedule intensity multiplier is drawn from it.
        capacity_low / capacity_high: Battery manufacturing-lot band —
            per-garment battery capacity (pJ) is drawn uniformly from
            it.  Varying capacity is what makes run-to-death fleets
            produce a non-degenerate lifetime distribution.
        max_jobs: Per-garment job cap (None = run to system death).
        max_frames: Per-garment frame safety limit.
    """

    name: str = "default"
    widths: tuple[int, ...] = (4, 5, 6)
    width_weights: tuple[float, ...] = (0.5, 0.3, 0.2)
    engines: tuple[str, ...] = ("auto", "vector")
    harvest_fraction: float = 0.6
    harvest_profile: str = "motion"
    amplitude_low: float = 20.0
    amplitude_high: float = 120.0
    gain_spread_low: float = 0.0
    gain_spread_high: float = 0.3
    equipped_fraction: float = 0.5
    wash_fraction: float = 0.5
    wash_intensity_low: float = 0.5
    wash_intensity_high: float = 2.0
    capacity_low: float = 20_000.0
    capacity_high: float = 40_000.0
    max_jobs: int | None = None
    max_frames: int = 8_000

    def __post_init__(self) -> None:
        if not self.widths:
            raise ConfigurationError("fleet needs at least one fabric width")
        if any(w < 2 for w in self.widths):
            raise ConfigurationError(
                f"fabric widths must be >= 2, got {self.widths}"
            )
        if len(self.width_weights) != len(self.widths):
            raise ConfigurationError(
                f"{len(self.widths)} widths need {len(self.widths)} "
                f"weights, got {len(self.width_weights)}"
            )
        if any(w <= 0 for w in self.width_weights):
            raise ConfigurationError("width weights must be positive")
        if not self.engines:
            raise ConfigurationError("fleet needs at least one engine")
        for engine in self.engines:
            if engine not in ENGINE_NAMES:
                raise ConfigurationError(
                    f"unknown engine {engine!r}; expected one of "
                    f"{ENGINE_NAMES}"
                )
        if self.harvest_profile not in HARVEST_PROFILES:
            raise ConfigurationError(
                f"unknown harvest profile {self.harvest_profile!r}"
            )
        for fraction, label in (
            (self.harvest_fraction, "harvest fraction"),
            (self.wash_fraction, "wash fraction"),
        ):
            if not 0.0 <= fraction <= 1.0:
                raise ConfigurationError(
                    f"{label} must lie in [0, 1], got {fraction}"
                )
        if not 0.0 < self.equipped_fraction <= 1.0:
            raise ConfigurationError(
                "equipped fraction must lie in (0, 1], got "
                f"{self.equipped_fraction}"
            )
        for low, high, label in (
            (self.amplitude_low, self.amplitude_high, "amplitude"),
            (self.gain_spread_low, self.gain_spread_high, "gain spread"),
            (
                self.wash_intensity_low,
                self.wash_intensity_high,
                "wash intensity",
            ),
        ):
            if low < 0 or high < low:
                raise ConfigurationError(
                    f"{label} band must satisfy 0 <= low <= high, "
                    f"got [{low}, {high}]"
                )
        if not 0.0 <= self.gain_spread_high < 1.0:
            raise ConfigurationError(
                "gain spread band must stay inside [0, 1), got "
                f"high={self.gain_spread_high}"
            )
        if not 0.0 < self.capacity_low <= self.capacity_high:
            raise ConfigurationError(
                "capacity band must satisfy 0 < low <= high, got "
                f"[{self.capacity_low}, {self.capacity_high}]"
            )
        if self.max_jobs is not None and self.max_jobs < 1:
            raise ConfigurationError("max_jobs must be >= 1 or None")
        if self.max_frames < 1:
            raise ConfigurationError("max_frames must be >= 1")

    # ------------------------------------------------------------------
    def _rng(self, fleet_seed: int, index: int) -> random.Random:
        return random.Random(
            derive_seed(fleet_seed, f"fleet/{self.name}/garment/{index}")
        )

    def garment_config(
        self,
        fleet_seed: int,
        index: int,
        base: SimulationConfig | None = None,
    ) -> SimulationConfig:
        """The ``index``-th garment of fleet ``fleet_seed``.

        A pure function of ``(fleet_seed, index)`` (and the optional
        base configuration the sampled axes are grafted onto): the same
        pair always yields a bit-identical configuration, on any host,
        in any order, from any shard.
        """
        if index < 0:
            raise ConfigurationError(f"garment index must be >= 0, got {index}")
        base = base if base is not None else SimulationConfig()
        rng = self._rng(fleet_seed, index)

        # Draw order is part of the format: never reorder these draws,
        # or every existing fleet seed resamples.
        width = rng.choices(self.widths, weights=self.width_weights)[0]
        engine = self.engines[rng.randrange(len(self.engines))]
        harvesting = rng.random() < self.harvest_fraction
        amplitude = rng.uniform(self.amplitude_low, self.amplitude_high)
        gain_spread = rng.uniform(self.gain_spread_low, self.gain_spread_high)
        washing = rng.random() < self.wash_fraction
        wash_intensity = rng.uniform(
            self.wash_intensity_low, self.wash_intensity_high
        )
        capacity = rng.uniform(self.capacity_low, self.capacity_high)
        workload_seed = rng.randrange(2**32)
        harvest_seed = rng.randrange(2**32)
        fault_seed = rng.randrange(2**32)
        hardware_seed = rng.randrange(2**32)

        harvest = base.harvest
        if harvesting and amplitude > 0:
            harvest = HarvestConfig(
                profile=self.harvest_profile,
                seed=harvest_seed,
                amplitude_pj=round(amplitude, 3),
                hardware=HarvestHardware(
                    equipped_fraction=self.equipped_fraction,
                    placement="flex",
                    seed=hardware_seed,
                    gain_spread=round(gain_spread, 4),
                ),
            )
        faults = base.faults
        if washing:
            faults = FaultConfig(
                profile="wash-cycle",
                seed=fault_seed,
                intensity=round(wash_intensity, 3),
            )
        return replace(
            base,
            platform=replace(
                base.platform,
                mesh_width=width,
                battery_capacity_pj=round(capacity, 1),
            ),
            workload=replace(
                base.workload,
                seed=workload_seed,
                max_jobs=self.max_jobs,
                max_frames=self.max_frames,
            ),
            harvest=harvest,
            faults=faults,
            engine=engine,
        )

    def point(
        self,
        fleet_seed: int,
        index: int,
        base: SimulationConfig | None = None,
    ) -> SweepPoint:
        """The garment as a sweep point (label and sampled params)."""
        config = self.garment_config(fleet_seed, index, base)
        width = config.platform.mesh_width
        return SweepPoint(
            label=f"g{index:04d}/{width}x{width}",
            config=config,
            params={
                "garment": index,
                "fleet_seed": fleet_seed,
                "mesh": f"{width}x{width}",
                "capacity_pj": config.platform.battery_capacity_pj,
                "engine": config.engine,
                "harvest_profile": config.harvest.profile,
                "amplitude_pj": config.harvest.amplitude_pj
                if config.harvest.is_active
                else 0.0,
                "gain_spread": config.harvest.hardware.gain_spread,
                "fault_profile": config.faults.profile,
                "fault_intensity": config.faults.intensity
                if config.faults.profile != "none"
                else 0.0,
            },
        )

    def points(
        self,
        fleet_seed: int,
        indices,
        base: SimulationConfig | None = None,
    ) -> list[SweepPoint]:
        """Sweep points for a (possibly sharded) index range."""
        return [self.point(fleet_seed, i, base) for i in indices]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict (JSON-safe) form of the distribution."""
        raw = asdict(self)
        for key in ("widths", "width_weights", "engines"):
            raw[key] = list(raw[key])
        return raw

    @classmethod
    def from_dict(cls, raw: dict) -> "FleetDistribution":
        data = dict(raw)
        for key in ("widths", "width_weights", "engines"):
            if key in data:
                data[key] = tuple(data[key])
        return cls(**data)


#: Named wearer/lot distribution presets.
#:
#: * ``smoke``  — tiny 4x4 garments on small battery lots, run to
#:   death in a few dozen frames each: thousands of them stream
#:   through CI in seconds (``python -m repro fleet --smoke``);
#: * ``default`` — the mixed commuter population: 4-6 fabrics, ~60 %
#:   harvesting at moderate activity, half the fleet seeing wash wear;
#: * ``active`` — athletic wearers: more motion income, wider hardware
#:   lots and harder washing.
FLEET_PRESETS: dict[str, FleetDistribution] = {
    "smoke": FleetDistribution(
        name="smoke",
        widths=(4,),
        width_weights=(1.0,),
        engines=("auto", "vector"),
        harvest_fraction=0.5,
        amplitude_low=20.0,
        amplitude_high=80.0,
        gain_spread_low=0.0,
        gain_spread_high=0.25,
        wash_fraction=0.4,
        capacity_low=5_000.0,
        capacity_high=10_000.0,
        max_frames=2_000,
    ),
    "default": FleetDistribution(),
    "active": FleetDistribution(
        name="active",
        widths=(4, 5, 6),
        width_weights=(0.3, 0.4, 0.3),
        harvest_fraction=0.85,
        amplitude_low=60.0,
        amplitude_high=240.0,
        gain_spread_low=0.05,
        gain_spread_high=0.45,
        wash_fraction=0.75,
        wash_intensity_low=1.0,
        wash_intensity_high=3.0,
        capacity_low=25_000.0,
        capacity_high=50_000.0,
    ),
}
