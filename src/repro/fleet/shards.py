"""Sharded fleet driver: split, run, retry, resume, merge.

One fleet — ``(distribution, fleet_seed, size)`` — is split into N
*shards*, disjoint contiguous index ranges that together tile
``[0, size)``.  Because every garment is a pure function of
``(fleet_seed, index)`` and the aggregator's canonical layer is
associative and order-independent, running the shards anywhere (a
local process pool, N hosts) and merging their state files afterwards
is **bit-identical** to one single-stream run — the property suite
pins this for every shard count.

The driver is built the way a training-job launcher has to be:

* **independent workers** — each shard runs in its own process
  (crashes cannot take the driver down) and writes a *standalone
  state file* that carries the full fleet identity, so shards can
  also be produced on separate hosts via the CLI's
  ``--shard-index/--shard-count`` mode and merged with
  ``repro fleet-merge``;
* **retry with backoff** — a crashed or timed-out shard is re-run
  (fresh pool, exponential backoff) up to ``max_attempts`` times
  before the whole run fails with :class:`~repro.errors.ShardError`;
* **manifest resume** — a JSON manifest records every shard's status
  (pending/running/done/failed) plus the fleet's content signature;
  an interrupted run pointed at the same directory re-runs only the
  missing shards and refuses to resume a *different* fleet;
* **strict merge** — state files are refused unless their schema,
  fleet seed, size, distribution, base-config hash and histogram
  bucket specs all match, and the shard ranges exactly tile the
  fleet; nothing merges silently into garbage.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import shutil
import tempfile
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import asdict, dataclass
from typing import Callable, Iterable, Iterator

from ..config import SimulationConfig
from ..errors import ConfigurationError, ShardError
from ..orchestration.cache import SweepCache, config_hash
from ..telemetry.console import get_logger
from .aggregate import FleetAggregator
from .distribution import FleetDistribution
from .runner import (
    FleetProgress,
    FleetRunResult,
    aggregator_for,
    run_fleet,
)

#: Version stamp of the standalone shard state file.
SHARD_STATE_SCHEMA = 1

#: Version stamp of the shard manifest file.
SHARD_MANIFEST_SCHEMA = 1

#: Name of the manifest file inside a shard directory.
MANIFEST_FILENAME = "manifest.json"


# ----------------------------------------------------------------------
# Splitting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of a fleet.

    Attributes:
        index: Shard number in ``[0, count)``.
        count: Total shards the fleet is split into.
        start: First garment index this shard covers.
        size: Garments this shard covers.
    """

    index: int
    count: int
    start: int
    size: int

    @property
    def stop(self) -> int:
        return self.start + self.size


def split_fleet(size: int, shard_count: int, start: int = 0) -> list[ShardSpec]:
    """Split ``[start, start+size)`` into ``shard_count`` contiguous shards.

    Deterministic and canonical: every participant (local driver,
    remote hosts, the merge validator) derives the same ranges from
    ``(size, shard_count)`` alone.  Sizes differ by at most one — the
    first ``size % shard_count`` shards take the extra garment.
    """
    if size < 0:
        raise ConfigurationError(f"fleet size must be >= 0, got {size}")
    if shard_count < 1:
        raise ConfigurationError(
            f"shard count must be >= 1, got {shard_count}"
        )
    base, extra = divmod(size, shard_count)
    specs = []
    cursor = start
    for index in range(shard_count):
        span = base + (1 if index < extra else 0)
        specs.append(
            ShardSpec(index=index, count=shard_count, start=cursor, size=span)
        )
        cursor += span
    return specs


def shard_spec_for(size: int, shard_count: int, index: int) -> ShardSpec:
    """The canonical spec of shard ``index`` of an N-way split."""
    if not 0 <= index < shard_count:
        raise ConfigurationError(
            f"shard index must lie in [0, {shard_count}), got {index}"
        )
    return split_fleet(size, shard_count)[index]


# ----------------------------------------------------------------------
# Fleet identity
# ----------------------------------------------------------------------
def fleet_signature(
    distribution: FleetDistribution,
    fleet_seed: int,
    size: int,
    base: SimulationConfig | None = None,
) -> str:
    """Content hash identifying one fleet (and its base configuration).

    Shard state files and the resume manifest both carry it: two
    shards merge (and a directory resumes) only when the signatures
    agree, so a changed preset, seed, size or base config can never be
    mixed into an existing run's artifacts.
    """
    payload = json.dumps(
        {
            "schema": SHARD_STATE_SCHEMA,
            "seed": int(fleet_seed),
            "size": int(size),
            "distribution": distribution.to_dict(),
            "base_hash": config_hash(base) if base is not None else None,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def shard_filename(spec: ShardSpec) -> str:
    """Canonical state-file name of one shard."""
    return f"shard_{spec.index:04d}of{spec.count:04d}.json"


# ----------------------------------------------------------------------
# Running one shard
# ----------------------------------------------------------------------
def run_shard(
    distribution: FleetDistribution,
    fleet_seed: int,
    fleet_size: int,
    spec: ShardSpec,
    *,
    base: SimulationConfig | None = None,
    workers: int = 1,
    cache: SweepCache | None = None,
    chunk_size: int = 128,
    progress: FleetProgress | None = None,
    trace: bool = False,
) -> dict:
    """Run one shard and return its standalone state document.

    The document is self-describing — fleet identity (preset, seed,
    size, distribution recipe, signature), the shard's range, the
    mergeable aggregator state and this run's diagnostics — so it can
    be produced on any host and later merged by
    :func:`merge_shard_states` with full validation.
    """
    if spec.start < 0 or spec.stop > fleet_size:
        raise ConfigurationError(
            f"shard range [{spec.start}, {spec.stop}) falls outside "
            f"the fleet [0, {fleet_size})"
        )
    result = run_fleet(
        distribution,
        spec.size,
        fleet_seed,
        base=base,
        start=spec.start,
        workers=workers,
        cache=cache,
        chunk_size=chunk_size,
        progress=progress,
        trace=trace,
    )
    return {
        "schema": SHARD_STATE_SCHEMA,
        "fleet": {
            "preset": distribution.name,
            "seed": int(fleet_seed),
            "size": int(fleet_size),
            "signature": fleet_signature(
                distribution, fleet_seed, fleet_size, base
            ),
            "base_hash": config_hash(base) if base is not None else None,
            "distribution": distribution.to_dict(),
        },
        "shard": asdict(spec),
        "state": result.aggregator.state_dict(),
        "run": {
            "executed": result.executed,
            "cached": result.cached,
            "elapsed_s": round(result.elapsed_s, 6),
        },
    }


def write_shard_state(path: str | os.PathLike, document: dict) -> None:
    """Atomically persist one shard state file (write-then-rename).

    A killed run can therefore never leave a truncated file that the
    manifest believes is done — the rename is the commit point.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    scratch = path.with_name(f".tmp-{path.name}-{os.getpid()}")
    scratch.write_text(
        json.dumps(document, sort_keys=True) + "\n", encoding="utf-8"
    )
    scratch.replace(path)


def load_shard_state(path: str | os.PathLike) -> dict:
    """Read one shard state file, validating its schema stamp."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema") != SHARD_STATE_SCHEMA:
        raise ConfigurationError(
            f"{path}: unsupported shard state schema "
            f"{document.get('schema')!r} (expected {SHARD_STATE_SCHEMA})"
        )
    return document


# ----------------------------------------------------------------------
# Merging
# ----------------------------------------------------------------------
@dataclass
class MergedShards:
    """Outcome of a validated shard merge.

    Attributes:
        aggregator: The merged canonical aggregate (bit-identical to a
            single stream over the whole fleet).
        fleet: The shared fleet identity section of the state files.
        shards: Per-shard run rows (index, range, executed/cached,
            elapsed) in index order.
        executed / cached: Garment totals across all shards.
        elapsed_s: Sum of per-shard wall-clock seconds (the compute
            cost, not the driver's wall time).
    """

    aggregator: FleetAggregator
    fleet: dict
    shards: list[dict]
    executed: int
    cached: int
    elapsed_s: float


def merge_shard_states(documents: Iterable[dict]) -> MergedShards:
    """Merge standalone shard state files into one canonical aggregate.

    The merge is *strict*: every document must carry the shard state
    schema, describe the same fleet (seed, size, preset, distribution,
    base-config hash), bucket its histograms identically, and the
    shard ranges must exactly tile ``[0, size)`` with no duplicates or
    gaps.  Any mismatch raises
    :class:`~repro.errors.ConfigurationError` naming the offending
    field — mismatched shards merging silently into garbage statistics
    is precisely the failure mode this refuses.
    """
    documents = list(documents)
    if not documents:
        raise ConfigurationError("no shard state files to merge")
    for document in documents:
        if document.get("schema") != SHARD_STATE_SCHEMA:
            raise ConfigurationError(
                "unsupported shard state schema "
                f"{document.get('schema')!r} (expected {SHARD_STATE_SCHEMA})"
            )

    reference = documents[0]["fleet"]
    for position, document in enumerate(documents[1:], start=1):
        fleet = document["fleet"]
        for field in ("signature", "seed", "size", "preset", "base_hash"):
            if fleet.get(field) != reference.get(field):
                raise ConfigurationError(
                    f"shard file #{position} disagrees on fleet "
                    f"{field}: {fleet.get(field)!r} != "
                    f"{reference.get(field)!r} — all shards must come "
                    "from one (distribution, seed, size) fleet"
                )
        if fleet.get("distribution") != reference.get("distribution"):
            raise ConfigurationError(
                f"shard file #{position} was sampled from a different "
                "distribution than the first shard"
            )

    distribution = FleetDistribution.from_dict(reference["distribution"])
    size = int(reference["size"])
    counts = {int(document["shard"]["count"]) for document in documents}
    if len(counts) != 1:
        raise ConfigurationError(
            f"shard files disagree on the shard count: {sorted(counts)}"
        )
    count = counts.pop()
    expected = {spec.index: spec for spec in split_fleet(size, count)}
    seen: dict[int, dict] = {}
    for document in documents:
        shard = document["shard"]
        index = int(shard["index"])
        if index in seen:
            raise ConfigurationError(
                f"duplicate state file for shard {index}"
            )
        spec = expected.get(index)
        if spec is None:
            raise ConfigurationError(
                f"shard index {index} does not exist in a {count}-way "
                f"split of {size} garments"
            )
        if (int(shard["start"]), int(shard["size"])) != (
            spec.start,
            spec.size,
        ):
            raise ConfigurationError(
                f"shard {index} covers [{shard['start']}, "
                f"{int(shard['start']) + int(shard['size'])}) but the "
                f"canonical {count}-way split expects "
                f"[{spec.start}, {spec.stop})"
            )
        seen[index] = document
    missing = sorted(set(expected) - set(seen))
    if missing:
        raise ConfigurationError(
            f"incomplete fleet: missing shard(s) {missing} of {count}"
        )

    # Start from the distribution-derived (hence canonical) bucket
    # spec; FleetAggregator.merge then validates every shard's state
    # against it, so a state file bucketed differently is refused.
    aggregator = aggregator_for(distribution)
    shards: list[dict] = []
    executed = cached = 0
    elapsed = 0.0
    for index in sorted(seen):
        document = seen[index]
        aggregator.merge(FleetAggregator.from_state(document["state"]))
        run = document.get("run", {})
        executed += int(run.get("executed", 0))
        cached += int(run.get("cached", 0))
        elapsed += float(run.get("elapsed_s", 0.0))
        shards.append(
            {
                "index": index,
                "start": expected[index].start,
                "size": expected[index].size,
                "executed": run.get("executed"),
                "cached": run.get("cached"),
                "elapsed_s": run.get("elapsed_s"),
            }
        )
    return MergedShards(
        aggregator=aggregator,
        fleet=dict(reference),
        shards=shards,
        executed=executed,
        cached=cached,
        elapsed_s=elapsed,
    )


def merged_bundle(documents: Iterable[dict]) -> dict:
    """A fleet bundle document assembled from shard state files.

    Shape-compatible with :func:`~repro.fleet.runner.fleet_bundle`
    (the ``aggregate`` section is bit-identical to the single-stream
    bundle's), with the per-shard breakdown under ``run.shards`` and
    histogram-derived stream percentiles (merges have no single
    arrival order).
    """
    from .runner import fleet_bundle

    merged = merge_shard_states(documents)
    distribution = FleetDistribution.from_dict(merged.fleet["distribution"])
    result = FleetRunResult(
        aggregator=merged.aggregator,
        size=int(merged.fleet["size"]),
        executed=merged.executed,
        cached=merged.cached,
        elapsed_s=merged.elapsed_s,
    )
    return fleet_bundle(
        distribution,
        int(merged.fleet["size"]),
        int(merged.fleet["seed"]),
        result,
        shards=merged.shards,
    )


# ----------------------------------------------------------------------
# Manifest (resume)
# ----------------------------------------------------------------------
class ShardManifest:
    """Durable record of a sharded run's progress.

    One JSON file per shard directory: the fleet signature, the shard
    count and a per-shard entry (``status`` in pending/running/done/
    failed, attempt count, state-file name, last error).  Every
    mutation is persisted atomically, so the manifest a crashed driver
    leaves behind is always internally consistent and a restart can
    resume by re-running exactly the non-``done`` shards.
    """

    def __init__(self, path: pathlib.Path, data: dict):
        self.path = path
        self.data = data

    @classmethod
    def load_or_create(
        cls,
        path: str | os.PathLike,
        *,
        signature: str,
        shard_count: int,
    ) -> "ShardManifest":
        """Open an existing manifest (validated) or start a fresh one.

        An existing manifest must describe the *same* fleet (content
        signature) split the *same* way — resuming a directory with a
        different preset, seed, size, base config or shard count is a
        configuration error, not a silent restart.
        """
        path = pathlib.Path(path)
        if path.exists():
            data = json.loads(path.read_text(encoding="utf-8"))
            if data.get("schema") != SHARD_MANIFEST_SCHEMA:
                raise ConfigurationError(
                    f"{path}: unsupported manifest schema "
                    f"{data.get('schema')!r}"
                )
            if data.get("signature") != signature:
                raise ConfigurationError(
                    f"{path} belongs to a different fleet (signature "
                    f"mismatch) — pick a fresh --shard-dir or delete "
                    "the stale one"
                )
            if data.get("shard_count") != shard_count:
                raise ConfigurationError(
                    f"{path} recorded a {data.get('shard_count')}-way "
                    f"split; cannot resume it {shard_count}-way"
                )
            # A shard left 'running' by a killed driver never finished
            # (the state-file rename is the commit point): re-run it.
            for entry in data["shards"].values():
                if entry["status"] == "running":
                    entry["status"] = "pending"
            return cls(path, data)
        data = {
            "schema": SHARD_MANIFEST_SCHEMA,
            "signature": signature,
            "shard_count": shard_count,
            "shards": {
                str(index): {
                    "status": "pending",
                    "attempts": 0,
                    "file": None,
                    "error": None,
                }
                for index in range(shard_count)
            },
        }
        manifest = cls(path, data)
        manifest.save()
        return manifest

    # ------------------------------------------------------------------
    def entry(self, index: int) -> dict:
        return self.data["shards"][str(index)]

    def mark(
        self,
        index: int,
        status: str,
        *,
        file: str | None = None,
        error: str | None = None,
        bump_attempt: bool = False,
    ) -> None:
        entry = self.entry(index)
        entry["status"] = status
        entry["file"] = file
        entry["error"] = error
        if bump_attempt:
            entry["attempts"] += 1
        self.save()

    def pending(self) -> list[int]:
        """Shards that still need a (re-)run, in index order."""
        return sorted(
            int(index)
            for index, entry in self.data["shards"].items()
            if entry["status"] != "done"
        )

    def attempts(self, index: int) -> int:
        return int(self.entry(index)["attempts"])

    def save(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        scratch = self.path.with_name(
            f".tmp-{self.path.name}-{os.getpid()}"
        )
        scratch.write_text(
            json.dumps(self.data, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        scratch.replace(self.path)


# ----------------------------------------------------------------------
# The local driver
# ----------------------------------------------------------------------
def _shard_worker(payload: dict) -> dict:
    """Run one shard from a plain-dict payload (pickles into workers).

    Rebuilds the distribution, base config and cache from primitives
    so the payload crosses process boundaries without dragging live
    objects along.
    """
    distribution = FleetDistribution.from_dict(payload["distribution"])
    base = (
        SimulationConfig.from_dict(payload["base"])
        if payload.get("base") is not None
        else None
    )
    cache = (
        SweepCache(payload["cache_dir"], backend=payload.get("cache_backend"))
        if payload.get("cache_dir")
        else None
    )
    return run_shard(
        distribution,
        payload["fleet_seed"],
        payload["fleet_size"],
        ShardSpec(**payload["shard"]),
        base=base,
        workers=1,
        cache=cache,
        chunk_size=payload.get("chunk_size", 128),
    )


@dataclass
class ShardedFleetResult:
    """Outcome of one locally-driven sharded fleet run.

    Attributes:
        result: The merged fleet result (aggregator bit-identical to a
            single stream; ``elapsed_s`` is the driver's wall time).
        shards: Per-shard run rows, including attempt counts.
        directory: The shard directory (None when an ephemeral
            temporary directory was used — nothing to resume).
    """

    result: FleetRunResult
    shards: list[dict]
    directory: str | None


def _execute_round(
    payloads: list[dict],
    *,
    worker: Callable[[dict], dict],
    inline: bool,
    pool_workers: int | None,
    timeout_s: float | None,
) -> Iterator[tuple[int, dict | Exception]]:
    """Run one retry round of shard payloads, yielding outcomes.

    ``inline`` executes in-process (tests, debugging — no timeout
    enforcement); the default is a fresh process pool per round, so a
    worker crash that breaks the pool (or a round-level timeout) is
    contained to this round and the next attempt starts clean.
    """
    if inline:
        for payload in payloads:
            index = payload["shard"]["index"]
            try:
                yield index, worker(payload)
            except Exception as exc:  # noqa: BLE001 — retried upstream
                yield index, exc
        return

    from concurrent.futures import ProcessPoolExecutor, as_completed

    workers = min(
        pool_workers if pool_workers else (os.cpu_count() or 1),
        len(payloads),
    )
    pool = ProcessPoolExecutor(max_workers=workers)
    futures = {
        pool.submit(worker, payload): payload["shard"]["index"]
        for payload in payloads
    }
    finished: set[int] = set()
    try:
        for future in as_completed(futures, timeout=timeout_s):
            index = futures[future]
            finished.add(index)
            try:
                yield index, future.result()
            except Exception as exc:  # noqa: BLE001 — retried upstream
                # Worker raised, or the pool broke under it (a killed
                # process surfaces as BrokenProcessPool on every
                # outstanding future) — both are per-shard failures
                # the retry loop handles with a fresh pool.
                yield index, exc
    except FutureTimeoutError:
        for future, index in futures.items():
            if index not in finished:
                future.cancel()
                yield index, ShardError(
                    f"shard {index} timed out after {timeout_s:.1f}s"
                )
    finally:
        # Never block the driver on abandoned workers: timed-out
        # processes are detached, not joined.
        pool.shutdown(wait=False, cancel_futures=True)


def run_sharded_fleet(
    distribution: FleetDistribution,
    size: int,
    fleet_seed: int,
    shard_count: int,
    *,
    base: SimulationConfig | None = None,
    directory: str | os.PathLike | None = None,
    cache_dir: str | None = None,
    cache_backend: str | None = None,
    chunk_size: int = 128,
    pool_workers: int | None = None,
    max_attempts: int = 3,
    backoff_s: float = 0.5,
    timeout_s: float | None = None,
    inline: bool = False,
    worker: Callable[[dict], dict] | None = None,
    sleep: Callable[[float], None] = time.sleep,
    logger=None,
) -> ShardedFleetResult:
    """Split one fleet into shards, run them fault-tolerantly, merge.

    Args:
        distribution / size / fleet_seed: The fleet, exactly as
            :func:`~repro.fleet.runner.run_fleet` takes it.
        shard_count: Disjoint index ranges to split the fleet into.
        base: Base configuration the sampled axes graft onto (part of
            the fleet signature — a different base is a different
            fleet).
        directory: Shard state files + manifest live here, enabling
            resume; ``None`` uses an ephemeral temporary directory
            (removed afterwards, nothing to resume).
        cache_dir / cache_backend: Sweep-cache location passed to the
            workers as primitives (each worker opens its own handle —
            all backends are concurrent-writer safe).
        chunk_size: Per-worker streaming chunk (the memory bound).
        pool_workers: Concurrent shard processes (None = machine
            cores, capped at the pending shard count).
        max_attempts: Runs each shard may consume before the driver
            gives up with :class:`~repro.errors.ShardError`.
        backoff_s: First retry delay; doubles every further round.
        timeout_s: Per-round wall-clock limit; shards still running
            when it expires are failed (and retried) as timeouts.
        inline: Run shards in-process instead of a pool (tests,
            debugging; timeouts are not enforced inline).
        worker: Injectable shard executor (payload -> state document);
            must be picklable unless ``inline``.
        sleep: Injectable backoff sleeper (tests).
        logger: Destination for per-shard heartbeat lines.
    """
    if max_attempts < 1:
        raise ConfigurationError(
            f"max_attempts must be >= 1, got {max_attempts}"
        )
    logger = logger if logger is not None else get_logger("fleet.shards")
    worker = worker if worker is not None else _shard_worker
    specs = split_fleet(size, shard_count)
    signature = fleet_signature(distribution, fleet_seed, size, base)

    ephemeral: str | None = None
    if directory is None:
        ephemeral = tempfile.mkdtemp(prefix="etsim-shards-")
        directory = ephemeral
    directory = pathlib.Path(directory)
    manifest = ShardManifest.load_or_create(
        directory / MANIFEST_FILENAME,
        signature=signature,
        shard_count=shard_count,
    )

    began = time.perf_counter()
    documents: dict[int, dict] = {}
    # Resume: reload finished shards instead of recomputing them.
    for spec in specs:
        entry = manifest.entry(spec.index)
        if entry["status"] != "done" or not entry.get("file"):
            continue
        try:
            document = load_shard_state(directory / entry["file"])
        except (OSError, ValueError, ConfigurationError):
            document = None
        if (
            document is not None
            and document["fleet"].get("signature") == signature
        ):
            documents[spec.index] = document
        else:
            manifest.mark(spec.index, "pending")
    if documents:
        logger.info(
            "resuming: %d/%d shard(s) already done in %s",
            len(documents), shard_count, directory,
        )

    def payload_for(spec: ShardSpec) -> dict:
        return {
            "distribution": distribution.to_dict(),
            "base": base.to_dict() if base is not None else None,
            "fleet_seed": int(fleet_seed),
            "fleet_size": int(size),
            "shard": asdict(spec),
            "chunk_size": chunk_size,
            "cache_dir": cache_dir,
            "cache_backend": cache_backend,
        }

    round_number = 0
    while len(documents) < shard_count:
        pending = [spec for spec in specs if spec.index not in documents]
        round_number += 1
        if round_number > max_attempts:
            failing = sorted(spec.index for spec in pending)
            raise ShardError(
                f"shard(s) {failing} still failing after "
                f"{max_attempts} attempt(s); manifest at "
                f"{manifest.path} has the per-shard errors"
            )
        if round_number > 1:
            delay = backoff_s * (2.0 ** (round_number - 2))
            logger.info(
                "retrying %d shard(s) in %.1fs (attempt %d/%d)",
                len(pending), delay, round_number, max_attempts,
            )
            if delay > 0:
                sleep(delay)
        for spec in pending:
            manifest.mark(spec.index, "running", bump_attempt=True)
            logger.info(
                "shard %d/%d: running garments [%d, %d)",
                spec.index + 1, shard_count, spec.start, spec.stop,
            )
        outcomes = _execute_round(
            [payload_for(spec) for spec in pending],
            worker=worker,
            inline=inline,
            pool_workers=pool_workers,
            timeout_s=timeout_s,
        )
        for index, outcome in outcomes:
            spec = specs[index]
            if isinstance(outcome, Exception):
                manifest.mark(index, "failed", error=repr(outcome))
                logger.warning(
                    "shard %d/%d: FAILED (attempt %d/%d): %s",
                    index + 1, shard_count, manifest.attempts(index),
                    max_attempts, outcome,
                )
                continue
            filename = shard_filename(spec)
            write_shard_state(directory / filename, outcome)
            manifest.mark(index, "done", file=filename)
            documents[index] = outcome
            run = outcome.get("run", {})
            logger.info(
                "shard %d/%d: done — %d simulated, %d cached in %.1fs",
                index + 1, shard_count, run.get("executed", 0),
                run.get("cached", 0), run.get("elapsed_s", 0.0),
            )

    merged = merge_shard_states(
        [documents[index] for index in sorted(documents)]
    )
    shards = [
        {**row, "attempts": manifest.attempts(row["index"])}
        for row in merged.shards
    ]
    if ephemeral is not None:
        shutil.rmtree(ephemeral, ignore_errors=True)
    return ShardedFleetResult(
        result=FleetRunResult(
            aggregator=merged.aggregator,
            size=size,
            executed=merged.executed,
            cached=merged.cached,
            elapsed_s=time.perf_counter() - began,
        ),
        shards=shards,
        directory=None if ephemeral is not None else str(directory),
    )
