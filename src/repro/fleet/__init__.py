"""Population-scale fleet sweeps.

One simulation is one garment; production relevance means statistics
over *millions* of wearers.  This package lifts the per-fabric results
of the paper (Fig 7/8, Table 2) to population scale:

* :mod:`~repro.fleet.distribution` — deterministic, seedable sampling
  of per-garment configurations from wearer/lot distributions (fabric
  size, activity level, wash frequency, harvest-hardware lots, engine
  mix); every garment reproducible from ``(fleet_seed, index)`` alone;
* :mod:`~repro.fleet.aggregate` — O(1)-memory streaming statistics
  (exact sums, P² running percentiles, bucketed survival curves) with
  an associative, order-independent mergeable core, so shards on
  separate processes or hosts combine bit-identically;
* :mod:`~repro.fleet.runner` — the chunked driver that streams any
  fleet size through the existing sweep runner and cache.
"""

from .aggregate import (
    FLEET_METRICS,
    FLEET_PERCENTILES,
    FLEET_STATE_SCHEMA,
    BucketHistogram,
    ExactSum,
    FleetAggregator,
    MetricSpec,
    MetricStat,
    P2Quantile,
)
from .distribution import FLEET_PRESETS, FleetDistribution
from .runner import (
    FLEET_BUNDLE_SCHEMA,
    FleetRunResult,
    aggregator_for,
    fleet_bundle,
    run_fleet,
)

__all__ = [
    "FLEET_BUNDLE_SCHEMA",
    "FLEET_METRICS",
    "FLEET_PERCENTILES",
    "FLEET_PRESETS",
    "FLEET_STATE_SCHEMA",
    "BucketHistogram",
    "ExactSum",
    "FleetAggregator",
    "FleetDistribution",
    "FleetRunResult",
    "MetricSpec",
    "MetricStat",
    "P2Quantile",
    "aggregator_for",
    "fleet_bundle",
    "run_fleet",
]
