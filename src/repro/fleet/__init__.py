"""Population-scale fleet sweeps.

One simulation is one garment; production relevance means statistics
over *millions* of wearers.  This package lifts the per-fabric results
of the paper (Fig 7/8, Table 2) to population scale:

* :mod:`~repro.fleet.distribution` — deterministic, seedable sampling
  of per-garment configurations from wearer/lot distributions (fabric
  size, activity level, wash frequency, harvest-hardware lots, engine
  mix); every garment reproducible from ``(fleet_seed, index)`` alone;
* :mod:`~repro.fleet.aggregate` — O(1)-memory streaming statistics
  (exact sums, P² running percentiles, bucketed survival curves) with
  an associative, order-independent mergeable core, so shards on
  separate processes or hosts combine bit-identically;
* :mod:`~repro.fleet.runner` — the chunked driver that streams any
  fleet size through the existing sweep runner and cache;
* :mod:`~repro.fleet.shards` — the fault-tolerant scale-out driver
  that splits one fleet into disjoint shards (local process pool or
  one-shard-per-host), retries crashed/timed-out shards, resumes
  interrupted runs from a manifest, and strictly merges standalone
  shard state files back into the canonical aggregate.
"""

from .aggregate import (
    FLEET_METRICS,
    FLEET_PERCENTILES,
    FLEET_STATE_SCHEMA,
    BucketHistogram,
    ExactSum,
    FleetAggregator,
    MetricSpec,
    MetricStat,
    P2Quantile,
)
from .distribution import FLEET_PRESETS, FleetDistribution
from .runner import (
    FLEET_BUNDLE_SCHEMA,
    FleetRunResult,
    aggregator_for,
    fleet_bundle,
    run_fleet,
)
from .shards import (
    SHARD_MANIFEST_SCHEMA,
    SHARD_STATE_SCHEMA,
    MergedShards,
    ShardedFleetResult,
    ShardManifest,
    ShardSpec,
    fleet_signature,
    load_shard_state,
    merge_shard_states,
    merged_bundle,
    run_shard,
    run_sharded_fleet,
    shard_spec_for,
    split_fleet,
    write_shard_state,
)

__all__ = [
    "FLEET_BUNDLE_SCHEMA",
    "FLEET_METRICS",
    "FLEET_PERCENTILES",
    "FLEET_PRESETS",
    "FLEET_STATE_SCHEMA",
    "SHARD_MANIFEST_SCHEMA",
    "SHARD_STATE_SCHEMA",
    "BucketHistogram",
    "ExactSum",
    "FleetAggregator",
    "FleetDistribution",
    "FleetRunResult",
    "MergedShards",
    "MetricSpec",
    "MetricStat",
    "P2Quantile",
    "ShardManifest",
    "ShardSpec",
    "ShardedFleetResult",
    "aggregator_for",
    "fleet_bundle",
    "fleet_signature",
    "load_shard_state",
    "merge_shard_states",
    "merged_bundle",
    "run_fleet",
    "run_shard",
    "run_sharded_fleet",
    "shard_spec_for",
    "split_fleet",
    "write_shard_state",
]
