"""Fault-model configuration.

Real e-textiles do not only die of battery depletion: conductive traces
are cut by wear, interconnects wash out, contacts become intermittent
(Wang et al. 2023; Noda & Shinoda 2018).  A :class:`FaultConfig` selects
a named *fault profile* — a deterministic, seedable generator of fault
events over the fabric — and its parameters.  The configuration is a
frozen dataclass like every other knob in :mod:`repro.config`, so a
fault-bearing run is fully described (and content-hashed for the sweep
cache) by its plain-dict form.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

#: Recognised fault profiles.
#:
#: * ``none``            — empty schedule (bit-identical to a fault-free run);
#: * ``link-attrition``  — permanent link cuts at a steady cadence, up to
#:   ``max_link_fraction`` of the fabric's internal links;
#: * ``node-dropout``    — whole-node failures independent of battery state;
#: * ``wash-cycle``      — periodic stress bursts: several links transiently
#:   degraded (hop energy scaled by ``degrade_factor``), with occasional
#:   permanent cuts;
#: * ``tear``            — spatially *correlated* cuts: each event picks a
#:   seed link and severs its whole geometric neighbourhood within
#:   ``tear_radius`` (a tear through the fabric takes adjacent lines with
#:   it, Wang et al. 2023);
#: * ``moisture``        — a patch of links degrades *together*; the patch
#:   centre drifts across the fabric between bursts (a damp region
#:   spreading through the weave).
FAULT_PROFILES = (
    "none",
    "link-attrition",
    "node-dropout",
    "wash-cycle",
    "tear",
    "moisture",
)

#: Fault-event kinds emitted by the schedule builders.  ``link-repair``
#: restores a previously cut line (a re-sewn interconnect).
FAULT_KINDS = ("link-cut", "node-kill", "link-degrade", "link-repair")

#: Profiles that *always* emit permanent ``link-cut`` events (and
#: therefore respond to the repair machinery).  ``moisture`` joins them
#: conditionally: with ``corrode_after_frames`` set, sustained
#: degradation corrodes wet links through into cuts.
CUTTING_PROFILES = ("link-attrition", "wash-cycle", "tear")


@dataclass(frozen=True)
class FaultConfig:
    """Parameters of the fault schedule generator.

    Attributes:
        profile: One of :data:`FAULT_PROFILES`.
        seed: Seed of the schedule generator (same seed, same topology
            and same parameters => identical schedule).
        intensity: Event-cadence multiplier; events arrive every
            ``period_frames / intensity`` frames.
        start_frame: First frame at which faults may fire.
        period_frames: Base spacing between consecutive fault events.
        max_link_fraction: Cap on the fraction of internal fabric links
            that may be permanently cut.
        max_node_fraction: Fraction of mesh nodes killed by
            ``node-dropout``.
        degrade_factor: Hop-energy multiplier of a degraded link (models
            increased line resistance from a worn contact).
        degrade_frames: Frames a transient degradation lasts.
        tear_radius: Geometric radius (in link-pitch units) of the
            neighbourhood a ``tear`` event cuts around its seed link.
        moisture_radius: Radius of the patch a ``moisture`` burst
            degrades around its drifting centre.
        repair_after_frames: When > 0, every permanent cut emitted by a
            cutting profile (:data:`CUTTING_PROFILES`) is followed by a
            ``link-repair`` event this many frames later — the line is
            re-sewn and routing capacity restored.  0 disables repair.
        repair_crew_size: When > 0, repairs are performed by a crew of
            this many menders instead of per-cut timers: each free
            mender picks the *oldest* still-severed cut and re-sews it
            ``repair_latency_frames`` later, so under a damage burst
            repairs queue behind the crew's capacity.  Mutually
            exclusive with ``repair_after_frames``.
        repair_latency_frames: Frames one crew member needs to re-sew
            one line (travel, stitching, curing).
        corrode_after_frames: Moisture only: once a link has been
            degraded for this many cumulative frames, the wet contact
            corrodes through — the degradation becomes a permanent
            ``link-cut`` (which the repair machinery can then re-sew
            like any other cut).  0 disables corrosion.
    """

    profile: str = "none"
    seed: int = 0
    intensity: float = 1.0
    start_frame: int = 4
    period_frames: int = 8
    max_link_fraction: float = 0.25
    max_node_fraction: float = 0.15
    degrade_factor: float = 3.0
    degrade_frames: int = 16
    tear_radius: float = 1.5
    moisture_radius: float = 2.0
    repair_after_frames: int = 0
    repair_crew_size: int = 0
    repair_latency_frames: int = 8
    corrode_after_frames: int = 0

    def __post_init__(self) -> None:
        if self.profile not in FAULT_PROFILES:
            raise ConfigurationError(
                f"unknown fault profile {self.profile!r}; "
                f"expected one of {FAULT_PROFILES}"
            )
        if self.intensity <= 0:
            raise ConfigurationError(
                f"fault intensity must be positive, got {self.intensity}"
            )
        if self.start_frame < 0:
            raise ConfigurationError("fault start frame must be >= 0")
        if self.period_frames < 1:
            raise ConfigurationError("fault period must be >= 1 frame")
        if not 0.0 <= self.max_link_fraction <= 1.0:
            raise ConfigurationError(
                "max_link_fraction must lie in [0, 1], got "
                f"{self.max_link_fraction}"
            )
        if not 0.0 <= self.max_node_fraction < 1.0:
            raise ConfigurationError(
                "max_node_fraction must lie in [0, 1), got "
                f"{self.max_node_fraction}"
            )
        if self.degrade_factor < 1.0:
            raise ConfigurationError(
                f"degrade factor must be >= 1, got {self.degrade_factor}"
            )
        if self.degrade_frames < 1:
            raise ConfigurationError("degrade duration must be >= 1 frame")
        if self.tear_radius <= 0:
            raise ConfigurationError(
                f"tear radius must be positive, got {self.tear_radius}"
            )
        if self.moisture_radius <= 0:
            raise ConfigurationError(
                f"moisture radius must be positive, got {self.moisture_radius}"
            )
        if self.repair_after_frames < 0:
            raise ConfigurationError(
                "repair_after_frames must be >= 0 (0 disables repair), "
                f"got {self.repair_after_frames}"
            )
        if self.repair_crew_size < 0:
            raise ConfigurationError(
                "repair_crew_size must be >= 0 (0 disables the crew), "
                f"got {self.repair_crew_size}"
            )
        if self.repair_crew_size > 0 and self.repair_after_frames > 0:
            raise ConfigurationError(
                "repair_after_frames and repair_crew_size are mutually "
                "exclusive repair models; set only one"
            )
        if self.repair_latency_frames < 1:
            raise ConfigurationError(
                "repair_latency_frames must be >= 1, got "
                f"{self.repair_latency_frames}"
            )
        if self.corrode_after_frames < 0:
            raise ConfigurationError(
                "corrode_after_frames must be >= 0 (0 disables "
                f"corrosion), got {self.corrode_after_frames}"
            )

    @property
    def is_active(self) -> bool:
        """True when this configuration can produce fault events."""
        return self.profile != "none"
