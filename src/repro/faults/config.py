"""Fault-model configuration.

Real e-textiles do not only die of battery depletion: conductive traces
are cut by wear, interconnects wash out, contacts become intermittent
(Wang et al. 2023; Noda & Shinoda 2018).  A :class:`FaultConfig` selects
a named *fault profile* — a deterministic, seedable generator of fault
events over the fabric — and its parameters.  The configuration is a
frozen dataclass like every other knob in :mod:`repro.config`, so a
fault-bearing run is fully described (and content-hashed for the sweep
cache) by its plain-dict form.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

#: Recognised fault profiles.
#:
#: * ``none``            — empty schedule (bit-identical to a fault-free run);
#: * ``link-attrition``  — permanent link cuts at a steady cadence, up to
#:   ``max_link_fraction`` of the fabric's internal links;
#: * ``node-dropout``    — whole-node failures independent of battery state;
#: * ``wash-cycle``      — periodic stress bursts: several links transiently
#:   degraded (hop energy scaled by ``degrade_factor``), with occasional
#:   permanent cuts.
FAULT_PROFILES = ("none", "link-attrition", "node-dropout", "wash-cycle")

#: Fault-event kinds emitted by the schedule builders.
FAULT_KINDS = ("link-cut", "node-kill", "link-degrade")


@dataclass(frozen=True)
class FaultConfig:
    """Parameters of the fault schedule generator.

    Attributes:
        profile: One of :data:`FAULT_PROFILES`.
        seed: Seed of the schedule generator (same seed, same topology
            and same parameters => identical schedule).
        intensity: Event-cadence multiplier; events arrive every
            ``period_frames / intensity`` frames.
        start_frame: First frame at which faults may fire.
        period_frames: Base spacing between consecutive fault events.
        max_link_fraction: Cap on the fraction of internal fabric links
            that may be permanently cut.
        max_node_fraction: Fraction of mesh nodes killed by
            ``node-dropout``.
        degrade_factor: Hop-energy multiplier of a degraded link (models
            increased line resistance from a worn contact).
        degrade_frames: Frames a transient degradation lasts.
    """

    profile: str = "none"
    seed: int = 0
    intensity: float = 1.0
    start_frame: int = 4
    period_frames: int = 8
    max_link_fraction: float = 0.25
    max_node_fraction: float = 0.15
    degrade_factor: float = 3.0
    degrade_frames: int = 16

    def __post_init__(self) -> None:
        if self.profile not in FAULT_PROFILES:
            raise ConfigurationError(
                f"unknown fault profile {self.profile!r}; "
                f"expected one of {FAULT_PROFILES}"
            )
        if self.intensity <= 0:
            raise ConfigurationError(
                f"fault intensity must be positive, got {self.intensity}"
            )
        if self.start_frame < 0:
            raise ConfigurationError("fault start frame must be >= 0")
        if self.period_frames < 1:
            raise ConfigurationError("fault period must be >= 1 frame")
        if not 0.0 <= self.max_link_fraction <= 1.0:
            raise ConfigurationError(
                "max_link_fraction must lie in [0, 1], got "
                f"{self.max_link_fraction}"
            )
        if not 0.0 <= self.max_node_fraction < 1.0:
            raise ConfigurationError(
                "max_node_fraction must lie in [0, 1), got "
                f"{self.max_node_fraction}"
            )
        if self.degrade_factor < 1.0:
            raise ConfigurationError(
                f"degrade factor must be >= 1, got {self.degrade_factor}"
            )
        if self.degrade_frames < 1:
            raise ConfigurationError("degrade duration must be >= 1 frame")

    @property
    def is_active(self) -> bool:
        """True when this configuration can produce fault events."""
        return self.profile != "none"
