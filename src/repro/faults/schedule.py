"""Deterministic fault schedules and their runtime state.

A *fault schedule* is the full, precomputed list of physical-failure
events one run will experience: permanent link cuts, node failures
independent of battery state, and transient link degradations.  It is a
pure function of the :class:`~repro.faults.config.FaultConfig`, the
fabric topology and the frame horizon — the same inputs always produce
the same events, which is what makes fault-bearing runs replayable and
cacheable.

The engines own a :class:`FaultRuntime` that walks the schedule frame by
frame and tracks the resulting link state (cut set, active
degradations); the actual mutation of the platform — severing topology
edges, scaling the length matrix, killing nodes — happens in
``EngineBase._apply_faults`` so that both simulation engines share one
implementation.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.link_levels import LinkLevelStore
from ..core.weights import DEFAULT_WEAR_LEVELS
from ..mesh.topology import Topology
from .config import FAULT_KINDS, FaultConfig


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled physical failure.

    Attributes:
        frame: TDMA frame at whose start the event fires.
        kind: One of :data:`~repro.faults.config.FAULT_KINDS`.
        node_a: Affected node (node events) or link endpoint.
        node_b: Second link endpoint (-1 for node events).
        factor: Hop-energy multiplier (``link-degrade`` only).
        duration_frames: Degradation lifetime (``link-degrade`` only;
            0 for permanent events).
    """

    frame: int
    kind: str
    node_a: int
    node_b: int = -1
    factor: float = 1.0
    duration_frames: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")


class FaultSchedule:
    """Immutable, frame-ordered sequence of fault events."""

    def __init__(self, events: Iterable[FaultEvent] = ()):
        # Stable sort: events generated for the same frame keep their
        # generation order, so application order is deterministic.
        self._events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda event: event.frame)
        )

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __eq__(self, other) -> bool:
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    @property
    def is_empty(self) -> bool:
        return not self._events

    def __repr__(self) -> str:
        return f"FaultSchedule({len(self._events)} events)"


def fabric_links(
    topology: Topology, num_mesh_nodes: int
) -> list[tuple[int, int]]:
    """Sorted internal (mesh-to-mesh) undirected links of the fabric.

    External attachments (the source/sink block's line, controller
    taps) are excluded: the fault model targets the woven interconnect,
    and cutting the single source line would only ever produce the
    trivial ``source-cut`` death.
    """
    pairs = {
        (min(u, v), max(u, v))
        for u, v, _ in topology.edges()
        if u < num_mesh_nodes and v < num_mesh_nodes
    }
    return sorted(pairs)


def _event_frame(config: FaultConfig, index: int) -> int:
    """Frame of the ``index``-th event of a steady cadence."""
    return config.start_frame + int(
        math.ceil((index + 1) * config.period_frames / config.intensity)
    )


def _link_attrition(
    config: FaultConfig,
    links: Sequence[tuple[int, int]],
    rng: random.Random,
    horizon: int,
) -> list[FaultEvent]:
    budget = int(len(links) * config.max_link_fraction)
    if budget == 0 and config.max_link_fraction > 0 and links:
        budget = 1
    chosen = rng.sample(list(links), min(budget, len(links)))
    events = []
    for index, (u, v) in enumerate(chosen):
        frame = _event_frame(config, index)
        if frame >= horizon:
            break
        events.append(FaultEvent(frame=frame, kind="link-cut", node_a=u, node_b=v))
    return events


def _node_dropout(
    config: FaultConfig,
    num_mesh_nodes: int,
    rng: random.Random,
    horizon: int,
) -> list[FaultEvent]:
    budget = int(num_mesh_nodes * config.max_node_fraction)
    if budget == 0 and config.max_node_fraction > 0:
        budget = 1
    budget = min(budget, num_mesh_nodes - 1)
    chosen = rng.sample(range(num_mesh_nodes), budget)
    events = []
    for index, node in enumerate(chosen):
        frame = _event_frame(config, index)
        if frame >= horizon:
            break
        events.append(FaultEvent(frame=frame, kind="node-kill", node_a=node))
    return events


def _wash_cycle(
    config: FaultConfig,
    links: Sequence[tuple[int, int]],
    rng: random.Random,
    horizon: int,
) -> list[FaultEvent]:
    if not links:
        return []
    spacing = max(1, int(round(config.period_frames * 4 / config.intensity)))
    cut_budget = int(len(links) * config.max_link_fraction)
    burst_size = max(1, len(links) // 8)
    events: list[FaultEvent] = []
    cuts = 0
    uncut = list(links)
    frame = config.start_frame + spacing
    while frame < horizon:
        for u, v in rng.sample(list(links), min(burst_size, len(links))):
            events.append(
                FaultEvent(
                    frame=frame,
                    kind="link-degrade",
                    node_a=u,
                    node_b=v,
                    factor=config.degrade_factor,
                    duration_frames=config.degrade_frames,
                )
            )
        if uncut and cuts < cut_budget and rng.random() < 0.5:
            # Sample from the links not yet chosen for a cut: a duplicate
            # pick would be silently skipped at application time, burning
            # the budget without severing anything.
            u, v = uncut.pop(rng.randrange(len(uncut)))
            events.append(
                FaultEvent(frame=frame, kind="link-cut", node_a=u, node_b=v)
            )
            cuts += 1
        frame += spacing
    return events


def _link_midpoints(
    topology: Topology, links: Sequence[tuple[int, int]]
) -> dict[tuple[int, int], tuple[float, float]]:
    """Geometric midpoint of every link that has one."""
    midpoints = {}
    for pair in links:
        midpoint = topology.edge_midpoint(*pair)
        if midpoint is not None:
            midpoints[pair] = midpoint
    return midpoints


def _distance(a: tuple[float, float], b: tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


def _tear(
    config: FaultConfig,
    links: Sequence[tuple[int, int]],
    topology: Topology,
    rng: random.Random,
    horizon: int,
) -> list[FaultEvent]:
    """Spatially correlated cuts: each event severs a whole neighbourhood.

    One tear picks a seed link and cuts every not-yet-cut link whose
    midpoint lies within ``tear_radius`` of the seed's midpoint,
    nearest-first (so a budget truncation still leaves a connected
    patch).  Fabrics without geometry degrade to single-link tears.
    """
    if not links:
        return []
    budget = int(len(links) * config.max_link_fraction)
    if budget == 0 and config.max_link_fraction > 0:
        budget = 1
    midpoints = _link_midpoints(topology, links)
    uncut = list(links)
    events: list[FaultEvent] = []
    burst = 0
    while budget > 0 and uncut:
        frame = _event_frame(config, burst)
        burst += 1
        if frame >= horizon:
            break
        seed = uncut[rng.randrange(len(uncut))]
        centre = midpoints.get(seed)
        if centre is None:
            neighbourhood = [seed]
        else:
            # Nearest-first, pair-ordered on ties: deterministic, and a
            # budget cut-off keeps the severed patch connected.
            reachable = sorted(
                (distance, pair)
                for pair in uncut
                if pair in midpoints
                and (distance := _distance(midpoints[pair], centre))
                <= config.tear_radius
            )
            neighbourhood = [pair for _, pair in reachable]
        for u, v in neighbourhood[:budget]:
            events.append(
                FaultEvent(frame=frame, kind="link-cut", node_a=u, node_b=v)
            )
            uncut.remove((u, v))
            budget -= 1
    return events


def _moisture(
    config: FaultConfig,
    links: Sequence[tuple[int, int]],
    topology: Topology,
    rng: random.Random,
    horizon: int,
) -> list[FaultEvent]:
    """A damp patch degrades a whole region; the patch drifts over time.

    Every cadence burst degrades all links within ``moisture_radius`` of
    the current patch centre (refreshing any still-active degradation),
    then the centre takes one random unit step, clamped to the fabric's
    bounding box.  Without geometry the patch is a single random link.

    With ``corrode_after_frames`` set, sustained wetness corrodes
    through: exposure counts a link's cumulative *non-overlapping* wet
    frames (a burst that refreshes an already-wet link only extends
    the wet period, it does not double-count the overlap), and the
    burst whose wet period carries a link past the threshold emits a
    permanent ``link-cut`` at the exact frame the threshold is
    reached.  A corroded link leaves the patch pool — it is severed,
    there is nothing left to wet — and, like any other cut, responds
    to the repair machinery.
    """
    if not links:
        return []
    midpoints = _link_midpoints(topology, links)
    spacing = max(
        1, int(math.ceil(config.period_frames / config.intensity))
    )
    events: list[FaultEvent] = []
    #: Cumulative non-overlapping wet frames per link (corrosion).
    exposure: dict[tuple[int, int], int] = {}
    #: Frame each link's scheduled wetness currently runs to.
    wet_until: dict[tuple[int, int], int] = {}
    corroded: set[tuple[int, int]] = set()
    if midpoints:
        xs = [p[0] for p in midpoints.values()]
        ys = [p[1] for p in midpoints.values()]
        bounds = (min(xs), max(xs), min(ys), max(ys))
        seed = list(midpoints)[rng.randrange(len(midpoints))]
        centre = midpoints[seed]
    else:
        bounds = None
        centre = None
    frame = config.start_frame + spacing
    while frame < horizon:
        if centre is None:
            patch = [links[rng.randrange(len(links))]]
        else:
            patch = [
                pair
                for pair in links
                if pair in midpoints
                and _distance(midpoints[pair], centre)
                <= config.moisture_radius
            ]
        for u, v in patch:
            pair = (u, v)
            if pair in corroded:
                continue
            if config.corrode_after_frames > 0:
                # This burst's wetness runs to frame + degrade_frames;
                # only the part past the already-scheduled wet period
                # is new exposure (a refresh extends, never overlaps).
                start = max(frame, wet_until.get(pair, frame))
                end = frame + config.degrade_frames
                before = exposure.get(pair, 0)
                if before + (end - start) >= config.corrode_after_frames:
                    # Stored exposure is always below the threshold, so
                    # the crossing lands strictly inside this burst's
                    # wet period: the link degrades now and corrodes
                    # through at the crossing frame.
                    cut_frame = start + (
                        config.corrode_after_frames - before
                    )
                    corroded.add(pair)
                    if cut_frame < horizon:
                        events.append(
                            FaultEvent(
                                frame=cut_frame,
                                kind="link-cut",
                                node_a=u,
                                node_b=v,
                            )
                        )
                else:
                    exposure[pair] = before + (end - start)
                    wet_until[pair] = end
            events.append(
                FaultEvent(
                    frame=frame,
                    kind="link-degrade",
                    node_a=u,
                    node_b=v,
                    factor=config.degrade_factor,
                    duration_frames=config.degrade_frames,
                )
            )
        if centre is not None and bounds is not None:
            dx = rng.choice((-1.0, 0.0, 1.0))
            dy = rng.choice((-1.0, 0.0, 1.0))
            centre = (
                min(max(centre[0] + dx, bounds[0]), bounds[1]),
                min(max(centre[1] + dy, bounds[2]), bounds[3]),
            )
        frame += spacing
    return events


def _with_repairs(
    config: FaultConfig, events: list[FaultEvent], horizon: int
) -> list[FaultEvent]:
    """Schedule a ``link-repair`` after every cut, when configured.

    A repair re-sews the severed line ``repair_after_frames`` after its
    cut; repairs that would land past the horizon are dropped (the run
    ends with the line still severed).
    """
    if config.repair_after_frames <= 0:
        return events
    repairs = [
        FaultEvent(
            frame=event.frame + config.repair_after_frames,
            kind="link-repair",
            node_a=event.node_a,
            node_b=event.node_b,
        )
        for event in events
        if event.kind == "link-cut"
        and event.frame + config.repair_after_frames < horizon
    ]
    return events + repairs


def _with_repair_crew(
    config: FaultConfig, events: list[FaultEvent], horizon: int
) -> list[FaultEvent]:
    """Schedule repairs performed by a bounded crew, oldest cut first.

    Unlike the per-cut timer of :func:`_with_repairs`, a crew of
    ``repair_crew_size`` menders works through the severed lines in cut
    order: each free mender takes the oldest still-severed cut and
    finishes ``repair_latency_frames`` later.  Under a damage burst the
    queue grows and lines stay severed far longer than the latency —
    the budgeted-maintenance model the ROADMAP asks for.  Repairs that
    would finish past the horizon are dropped.
    """
    if config.repair_crew_size <= 0:
        return events
    cuts = sorted(
        (event for event in events if event.kind == "link-cut"),
        key=lambda event: event.frame,
    )
    #: Min-heap of frames at which each mender becomes free.
    free = [config.start_frame] * config.repair_crew_size
    heapq.heapify(free)
    repairs = []
    for cut in cuts:
        start = max(cut.frame, heapq.heappop(free))
        done = start + config.repair_latency_frames
        heapq.heappush(free, done)
        if done < horizon:
            repairs.append(
                FaultEvent(
                    frame=done,
                    kind="link-repair",
                    node_a=cut.node_a,
                    node_b=cut.node_b,
                )
            )
    return events + repairs


def build_fault_schedule(
    config: FaultConfig,
    topology: Topology,
    num_mesh_nodes: int,
    horizon_frames: int,
) -> FaultSchedule:
    """Generate the full fault schedule of one run.

    Deterministic: the events depend only on the arguments (the RNG is
    seeded from ``config.seed`` and candidate links are enumerated in
    sorted order).
    """
    if not config.is_active:
        return FaultSchedule()
    rng = random.Random(config.seed)
    links = fabric_links(topology, num_mesh_nodes)
    if config.profile == "link-attrition":
        events = _link_attrition(config, links, rng, horizon_frames)
    elif config.profile == "node-dropout":
        events = _node_dropout(config, num_mesh_nodes, rng, horizon_frames)
    elif config.profile == "tear":
        events = _tear(config, links, topology, rng, horizon_frames)
    elif config.profile == "moisture":
        events = _moisture(config, links, topology, rng, horizon_frames)
    else:  # wash-cycle
        events = _wash_cycle(config, links, rng, horizon_frames)
    # Both repair models key on the emitted link-cut events themselves,
    # so any profile that cuts (CUTTING_PROFILES, or moisture once
    # corrosion is enabled) gets its repairs without a second
    # registration.  The config validator guarantees at most one model
    # is configured.
    events = _with_repairs(config, events, horizon_frames)
    events = _with_repair_crew(config, events, horizon_frames)
    return FaultSchedule(events)


class FaultRuntime:
    """Per-run fault state: schedule cursor, cut links, degradations,
    and the per-link wear history backing the wear-prediction weight.

    The engines query :attr:`cut_links` on every hop decision (it is a
    plain set of *directed* pairs, empty for fault-free runs, so the
    hot-path cost is one set membership test) and drain due events at
    frame boundaries via :meth:`due`.

    Wear tracking (:meth:`note_traversal` / :meth:`note_degraded`) is
    opt-in via ``wear_quantum``: each link's wear level is its traversal
    count in units of ``wear_quantum`` plus one full level per
    degradation event it has suffered, capped at ``wear_levels - 1``.
    :attr:`wear_dirty` flips whenever some link crosses a level
    boundary, so the engine only pushes a fresh wear picture to the
    controller when the quantised state actually changed — the same
    trigger discipline as battery-level reports.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        wear_quantum: int = 0,
        wear_levels: int = DEFAULT_WEAR_LEVELS,
    ):
        self.schedule = schedule
        self._cursor = 0
        #: Directed pairs severed so far (both directions of every cut).
        self.cut_links: set[tuple[int, int]] = set()
        #: Canonical ``(min, max)`` pair -> (factor, expiry frame).
        self.degraded: dict[tuple[int, int], tuple[float, int]] = {}
        #: Canonical pair -> data-network traversal count.
        self.traversals: dict[tuple[int, int], int] = {}
        #: Canonical pair -> degradation events suffered so far.
        self.degrade_counts: dict[tuple[int, int], int] = {}
        self.wear_quantum = int(wear_quantum)
        self.wear_levels = int(wear_levels)
        #: Canonical pair -> current quantised wear level (> 0 only).
        self._levels = LinkLevelStore()

    @property
    def wear_dirty(self) -> bool:
        """Some link crossed a wear-level boundary since the last reset."""
        return self._levels.dirty

    @wear_dirty.setter
    def wear_dirty(self, value: bool) -> None:
        self._levels.dirty = value

    def due(self, frame: int) -> list[FaultEvent]:
        """Events scheduled at or before ``frame`` not yet delivered."""
        events = []
        schedule = self.schedule.events
        while self._cursor < len(schedule):
            event = schedule[self._cursor]
            if event.frame > frame:
                break
            events.append(event)
            self._cursor += 1
        return events

    def expire_degradations(self, frame: int) -> list[tuple[int, int]]:
        """Remove and return degradations whose expiry has passed."""
        expired = [
            pair
            for pair, (_, expiry) in self.degraded.items()
            if expiry <= frame
        ]
        for pair in expired:
            del self.degraded[pair]
        return expired

    def mark_cut(self, u: int, v: int) -> None:
        self.cut_links.add((u, v))
        self.cut_links.add((v, u))
        self.degraded.pop((min(u, v), max(u, v)), None)

    def mark_repaired(self, u: int, v: int) -> None:
        """A cut line was re-sewn: clear its severed state.

        The repaired line starts a fresh wear life — the traversal and
        degradation history of the old line is discarded along with any
        quantised wear level it had accumulated.
        """
        self.cut_links.discard((u, v))
        self.cut_links.discard((v, u))
        pair = (min(u, v), max(u, v))
        self.traversals.pop(pair, None)
        self.degrade_counts.pop(pair, None)
        self._levels.clear(pair)

    def is_cut(self, u: int, v: int) -> bool:
        return (u, v) in self.cut_links

    # ------------------------------------------------------------------
    # Wear tracking
    # ------------------------------------------------------------------
    def _refresh_level(self, pair: tuple[int, int]) -> None:
        level = min(
            self.wear_levels - 1,
            self.traversals.get(pair, 0) // self.wear_quantum
            + self.degrade_counts.get(pair, 0),
        )
        self._levels.set_level(pair, level)

    def note_traversal(self, u: int, v: int) -> None:
        """One packet crossed the ``u - v`` line (hot path when enabled)."""
        if not self.wear_quantum:
            return
        pair = (u, v) if u < v else (v, u)
        self.traversals[pair] = self.traversals.get(pair, 0) + 1
        self._refresh_level(pair)

    def note_degraded(self, u: int, v: int) -> None:
        """The ``u - v`` line suffered one degradation event."""
        if not self.wear_quantum:
            return
        pair = (u, v) if u < v else (v, u)
        self.degrade_counts[pair] = self.degrade_counts.get(pair, 0) + 1
        self._refresh_level(pair)

    def wear_level_matrix(self, num_nodes: int) -> np.ndarray:
        """Dense symmetric ``(K, K)`` int matrix of quantised wear levels."""
        return self._levels.matrix(num_nodes)

    def level_snapshot(self) -> dict[tuple[int, int], int]:
        """Sparse copy of the nonzero wear levels (telemetry probes)."""
        return self._levels.snapshot()
