"""Deterministic fault schedules and their runtime state.

A *fault schedule* is the full, precomputed list of physical-failure
events one run will experience: permanent link cuts, node failures
independent of battery state, and transient link degradations.  It is a
pure function of the :class:`~repro.faults.config.FaultConfig`, the
fabric topology and the frame horizon — the same inputs always produce
the same events, which is what makes fault-bearing runs replayable and
cacheable.

The engines own a :class:`FaultRuntime` that walks the schedule frame by
frame and tracks the resulting link state (cut set, active
degradations); the actual mutation of the platform — severing topology
edges, scaling the length matrix, killing nodes — happens in
``EngineBase._apply_faults`` so that both simulation engines share one
implementation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..mesh.topology import Topology
from .config import FAULT_KINDS, FaultConfig


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled physical failure.

    Attributes:
        frame: TDMA frame at whose start the event fires.
        kind: One of :data:`~repro.faults.config.FAULT_KINDS`.
        node_a: Affected node (node events) or link endpoint.
        node_b: Second link endpoint (-1 for node events).
        factor: Hop-energy multiplier (``link-degrade`` only).
        duration_frames: Degradation lifetime (``link-degrade`` only;
            0 for permanent events).
    """

    frame: int
    kind: str
    node_a: int
    node_b: int = -1
    factor: float = 1.0
    duration_frames: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")


class FaultSchedule:
    """Immutable, frame-ordered sequence of fault events."""

    def __init__(self, events: Iterable[FaultEvent] = ()):
        # Stable sort: events generated for the same frame keep their
        # generation order, so application order is deterministic.
        self._events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda event: event.frame)
        )

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __eq__(self, other) -> bool:
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    @property
    def is_empty(self) -> bool:
        return not self._events

    def __repr__(self) -> str:
        return f"FaultSchedule({len(self._events)} events)"


def fabric_links(
    topology: Topology, num_mesh_nodes: int
) -> list[tuple[int, int]]:
    """Sorted internal (mesh-to-mesh) undirected links of the fabric.

    External attachments (the source/sink block's line, controller
    taps) are excluded: the fault model targets the woven interconnect,
    and cutting the single source line would only ever produce the
    trivial ``source-cut`` death.
    """
    pairs = {
        (min(u, v), max(u, v))
        for u, v, _ in topology.edges()
        if u < num_mesh_nodes and v < num_mesh_nodes
    }
    return sorted(pairs)


def _event_frame(config: FaultConfig, index: int) -> int:
    """Frame of the ``index``-th event of a steady cadence."""
    return config.start_frame + int(
        math.ceil((index + 1) * config.period_frames / config.intensity)
    )


def _link_attrition(
    config: FaultConfig,
    links: Sequence[tuple[int, int]],
    rng: random.Random,
    horizon: int,
) -> list[FaultEvent]:
    budget = int(len(links) * config.max_link_fraction)
    if budget == 0 and config.max_link_fraction > 0 and links:
        budget = 1
    chosen = rng.sample(list(links), min(budget, len(links)))
    events = []
    for index, (u, v) in enumerate(chosen):
        frame = _event_frame(config, index)
        if frame >= horizon:
            break
        events.append(FaultEvent(frame=frame, kind="link-cut", node_a=u, node_b=v))
    return events


def _node_dropout(
    config: FaultConfig,
    num_mesh_nodes: int,
    rng: random.Random,
    horizon: int,
) -> list[FaultEvent]:
    budget = int(num_mesh_nodes * config.max_node_fraction)
    if budget == 0 and config.max_node_fraction > 0:
        budget = 1
    budget = min(budget, num_mesh_nodes - 1)
    chosen = rng.sample(range(num_mesh_nodes), budget)
    events = []
    for index, node in enumerate(chosen):
        frame = _event_frame(config, index)
        if frame >= horizon:
            break
        events.append(FaultEvent(frame=frame, kind="node-kill", node_a=node))
    return events


def _wash_cycle(
    config: FaultConfig,
    links: Sequence[tuple[int, int]],
    rng: random.Random,
    horizon: int,
) -> list[FaultEvent]:
    if not links:
        return []
    spacing = max(1, int(round(config.period_frames * 4 / config.intensity)))
    cut_budget = int(len(links) * config.max_link_fraction)
    burst_size = max(1, len(links) // 8)
    events: list[FaultEvent] = []
    cuts = 0
    frame = config.start_frame + spacing
    while frame < horizon:
        for u, v in rng.sample(list(links), min(burst_size, len(links))):
            events.append(
                FaultEvent(
                    frame=frame,
                    kind="link-degrade",
                    node_a=u,
                    node_b=v,
                    factor=config.degrade_factor,
                    duration_frames=config.degrade_frames,
                )
            )
        if cuts < cut_budget and rng.random() < 0.5:
            u, v = links[rng.randrange(len(links))]
            events.append(
                FaultEvent(frame=frame, kind="link-cut", node_a=u, node_b=v)
            )
            cuts += 1
        frame += spacing
    return events


def build_fault_schedule(
    config: FaultConfig,
    topology: Topology,
    num_mesh_nodes: int,
    horizon_frames: int,
) -> FaultSchedule:
    """Generate the full fault schedule of one run.

    Deterministic: the events depend only on the arguments (the RNG is
    seeded from ``config.seed`` and candidate links are enumerated in
    sorted order).
    """
    if not config.is_active:
        return FaultSchedule()
    rng = random.Random(config.seed)
    links = fabric_links(topology, num_mesh_nodes)
    if config.profile == "link-attrition":
        events = _link_attrition(config, links, rng, horizon_frames)
    elif config.profile == "node-dropout":
        events = _node_dropout(config, num_mesh_nodes, rng, horizon_frames)
    else:  # wash-cycle
        events = _wash_cycle(config, links, rng, horizon_frames)
    return FaultSchedule(events)


class FaultRuntime:
    """Per-run fault state: schedule cursor, cut links, degradations.

    The engines query :attr:`cut_links` on every hop decision (it is a
    plain set of *directed* pairs, empty for fault-free runs, so the
    hot-path cost is one set membership test) and drain due events at
    frame boundaries via :meth:`due`.
    """

    def __init__(self, schedule: FaultSchedule):
        self.schedule = schedule
        self._cursor = 0
        #: Directed pairs severed so far (both directions of every cut).
        self.cut_links: set[tuple[int, int]] = set()
        #: Canonical ``(min, max)`` pair -> (factor, expiry frame).
        self.degraded: dict[tuple[int, int], tuple[float, int]] = {}

    def due(self, frame: int) -> list[FaultEvent]:
        """Events scheduled at or before ``frame`` not yet delivered."""
        events = []
        schedule = self.schedule.events
        while self._cursor < len(schedule):
            event = schedule[self._cursor]
            if event.frame > frame:
                break
            events.append(event)
            self._cursor += 1
        return events

    def expire_degradations(self, frame: int) -> list[tuple[int, int]]:
        """Remove and return degradations whose expiry has passed."""
        expired = [
            pair
            for pair, (_, expiry) in self.degraded.items()
            if expiry <= frame
        ]
        for pair in expired:
            del self.degraded[pair]
        return expired

    def mark_cut(self, u: int, v: int) -> None:
        self.cut_links.add((u, v))
        self.cut_links.add((v, u))
        self.degraded.pop((min(u, v), max(u, v)), None)

    def is_cut(self, u: int, v: int) -> bool:
        return (u, v) in self.cut_links
