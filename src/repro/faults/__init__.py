"""Fault injection for the e-textile platform.

The paper exercises graceful degradation on exactly one failure mode —
battery depletion.  This package adds the physical hazards a woven
platform actually faces: permanent link cuts, node failures independent
of battery state, and transient link degradation that scales hop
energy.  Schedules are deterministic functions of a
:class:`FaultConfig` plus the topology, so fault-bearing runs stay
replayable, cacheable and bit-identical across sequential and parallel
sweep runners.
"""

from .config import (
    CUTTING_PROFILES,
    FAULT_KINDS,
    FAULT_PROFILES,
    FaultConfig,
)
from .schedule import (
    FaultEvent,
    FaultRuntime,
    FaultSchedule,
    build_fault_schedule,
    fabric_links,
)

__all__ = [
    "CUTTING_PROFILES",
    "FAULT_KINDS",
    "FAULT_PROFILES",
    "FaultConfig",
    "FaultEvent",
    "FaultRuntime",
    "FaultSchedule",
    "build_fault_schedule",
    "fabric_links",
]
