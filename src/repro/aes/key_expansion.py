"""AES key expansion (FIPS-197 Sec 5.2).

Expands a 128/192/256-bit cipher key into ``Nb * (Nr + 1)`` 32-bit words,
returned as a list of 16-byte round keys.  In the paper's partitioning,
key expansion belongs to Module 3 (KeyExpansion / AddRoundKey); each
module-3 node holds the full schedule, so expansion happens once per key
and its cost is folded into the measured E3 energy.
"""

from __future__ import annotations

from .gf import xtime
from .sbox import SBOX
from .state import BLOCK_BYTES, NB

#: Supported key lengths in bytes, mapped to (Nk, Nr).
KEY_SCHEDULES: dict[int, tuple[int, int]] = {
    16: (4, 10),   # AES-128
    24: (6, 12),   # AES-192
    32: (8, 14),   # AES-256
}


def rounds_for_key(key: bytes) -> int:
    """Number of cipher rounds ``Nr`` for a key of the given length."""
    try:
        return KEY_SCHEDULES[len(key)][1]
    except KeyError:
        raise ValueError(
            f"AES key must be 16, 24 or 32 bytes, got {len(key)}"
        ) from None


def _rcon(i: int) -> int:
    """Round constant word value ``x^(i-1)`` in GF(2^8)."""
    value = 1
    for _ in range(i - 1):
        value = xtime(value)
    return value


def _sub_word(word: tuple[int, int, int, int]) -> tuple[int, int, int, int]:
    return tuple(SBOX[b] for b in word)  # type: ignore[return-value]


def _rot_word(word: tuple[int, int, int, int]) -> tuple[int, int, int, int]:
    return word[1], word[2], word[3], word[0]


def expand_key_words(key: bytes) -> list[tuple[int, int, int, int]]:
    """Expand ``key`` into the FIPS-197 word schedule ``w[0..Nb*(Nr+1)-1]``."""
    if len(key) not in KEY_SCHEDULES:
        raise ValueError(
            f"AES key must be 16, 24 or 32 bytes, got {len(key)}"
        )
    nk, nr = KEY_SCHEDULES[len(key)]
    words: list[tuple[int, int, int, int]] = [
        tuple(key[4 * i : 4 * i + 4]) for i in range(nk)  # type: ignore[misc]
    ]
    for i in range(nk, NB * (nr + 1)):
        temp = words[i - 1]
        if i % nk == 0:
            temp = _sub_word(_rot_word(temp))
            temp = (temp[0] ^ _rcon(i // nk), temp[1], temp[2], temp[3])
        elif nk > 6 and i % nk == 4:
            temp = _sub_word(temp)
        prev = words[i - nk]
        words.append(tuple(p ^ t for p, t in zip(prev, temp)))  # type: ignore[arg-type]
    return words


def round_keys(key: bytes) -> list[bytes]:
    """Return the ``Nr + 1`` round keys as 16-byte blocks.

    Round key ``r`` is the concatenation of words ``w[4r .. 4r+3]``; the
    byte order matches the column-major state layout, so
    :func:`repro.aes.transforms.add_round_key` can XOR it directly.
    """
    words = expand_key_words(key)
    nr = rounds_for_key(key)
    keys = []
    for r in range(nr + 1):
        chunk = bytearray()
        for w in words[NB * r : NB * (r + 1)]:
            chunk.extend(w)
        if len(chunk) != BLOCK_BYTES:
            raise AssertionError("round key construction produced a bad block")
        keys.append(bytes(chunk))
    return keys
