"""The four AES round transformations and their inverses.

All transforms take and return a flat 16-byte block in the FIPS-197
column-major layout (``state[r][c] == block[r + 4*c]``, see
:mod:`repro.aes.state`).  They are pure functions: the simulator treats
each as the unit of computation performed by one e-textile module
(Sec 5.1.1 of the paper), so keeping them side-effect free makes the
distributed execution trivially checkable against the monolithic cipher.
"""

from __future__ import annotations

from .gf import gf_mul
from .sbox import INV_SBOX, SBOX
from .state import BLOCK_BYTES, NB, validate_block

#: MixColumns circulant matrix rows (FIPS-197 Sec 5.1.3).
_MIX_ROWS = (
    (0x02, 0x03, 0x01, 0x01),
    (0x01, 0x02, 0x03, 0x01),
    (0x01, 0x01, 0x02, 0x03),
    (0x03, 0x01, 0x01, 0x02),
)

#: InvMixColumns circulant matrix rows (FIPS-197 Sec 5.3.3).
_INV_MIX_ROWS = (
    (0x0E, 0x0B, 0x0D, 0x09),
    (0x09, 0x0E, 0x0B, 0x0D),
    (0x0D, 0x09, 0x0E, 0x0B),
    (0x0B, 0x0D, 0x09, 0x0E),
)

#: Precomputed GF(2^8) multiplication rows for the fixed (Inv)MixColumns
#: coefficients, built once from the first-principles :func:`gf_mul` (the
#: test suite verifies the two against each other).  MixColumns runs
#: inside every simulated act of computation, so the simulator hot path
#: reduces to table lookups and XORs.
_MUL_TABLE: dict[int, tuple[int, ...]] = {
    coeff: tuple(gf_mul(coeff, value) for value in range(256))
    for row in _MIX_ROWS + _INV_MIX_ROWS
    for coeff in row
}


def sub_bytes(block: bytes) -> bytes:
    """Apply the S-box to every byte of the state."""
    validate_block(block)
    return bytes(SBOX[b] for b in block)


def inv_sub_bytes(block: bytes) -> bytes:
    """Apply the inverse S-box to every byte of the state."""
    validate_block(block)
    return bytes(INV_SBOX[b] for b in block)


def shift_rows(block: bytes) -> bytes:
    """Cyclically shift row ``r`` of the state left by ``r`` positions."""
    validate_block(block)
    out = bytearray(BLOCK_BYTES)
    for r in range(4):
        for c in range(NB):
            out[r + 4 * c] = block[r + 4 * ((c + r) % NB)]
    return bytes(out)


def inv_shift_rows(block: bytes) -> bytes:
    """Cyclically shift row ``r`` of the state right by ``r`` positions."""
    validate_block(block)
    out = bytearray(BLOCK_BYTES)
    for r in range(4):
        for c in range(NB):
            out[r + 4 * ((c + r) % NB)] = block[r + 4 * c]
    return bytes(out)


def sub_bytes_shift_rows(block: bytes) -> bytes:
    """The fused SubBytes+ShiftRows operation of the paper's Module 1.

    The paper packages SubBytes and ShiftRows into a single hardware
    module, so one *act of computation* (one f1 operation) applies both.
    """
    return shift_rows(sub_bytes(block))


def inv_sub_bytes_shift_rows(block: bytes) -> bytes:
    """Inverse of :func:`sub_bytes_shift_rows` (InvShiftRows then InvSubBytes)."""
    return inv_sub_bytes(inv_shift_rows(block))


def _mix_with(block: bytes, rows: tuple[tuple[int, ...], ...]) -> bytes:
    out = bytearray(BLOCK_BYTES)
    tables = _MUL_TABLE
    for c in range(NB):
        base = 4 * c
        b0, b1, b2, b3 = block[base : base + 4]
        for r in range(4):
            m0, m1, m2, m3 = rows[r]
            out[base + r] = (
                tables[m0][b0]
                ^ tables[m1][b1]
                ^ tables[m2][b2]
                ^ tables[m3][b3]
            )
    return bytes(out)


def mix_columns(block: bytes) -> bytes:
    """Multiply each state column by the MixColumns matrix over GF(2^8).

    This is the paper's Module 2 operation (one f2 act of computation).
    """
    validate_block(block)
    return _mix_with(block, _MIX_ROWS)


def inv_mix_columns(block: bytes) -> bytes:
    """Multiply each state column by the InvMixColumns matrix."""
    validate_block(block)
    return _mix_with(block, _INV_MIX_ROWS)


def add_round_key(block: bytes, round_key: bytes) -> bytes:
    """XOR the state with one 16-byte round key.

    This is the paper's Module 3 operation (one f3 act of computation);
    the key schedule itself is produced by
    :func:`repro.aes.key_expansion.expand_key` which the paper likewise
    assigns to Module 3.
    """
    validate_block(block)
    validate_block(round_key, name="round_key")
    return bytes(b ^ k for b, k in zip(block, round_key))
