"""The AES S-box and its inverse, generated from first principles.

Rather than hard-coding the 256-entry table from FIPS-197, the S-box is
*derived*: each byte is replaced by its multiplicative inverse in GF(2^8)
followed by the fixed affine transformation over GF(2)

    b'_i = b_i ^ b_{(i+4) mod 8} ^ b_{(i+5) mod 8}
               ^ b_{(i+6) mod 8} ^ b_{(i+7) mod 8} ^ c_i

with ``c = 0x63``.  The test suite checks the generated table against the
published FIPS-197 spot values and the inverse table against a full
round-trip property.
"""

from __future__ import annotations

from .gf import gf_inverse

#: The affine constant from FIPS-197 Sec 5.1.1.
AFFINE_CONSTANT = 0x63


def _affine_transform(byte: int) -> int:
    """Apply the AES affine transformation over GF(2) to one byte."""
    result = 0
    for i in range(8):
        bit = (
            (byte >> i)
            ^ (byte >> ((i + 4) % 8))
            ^ (byte >> ((i + 5) % 8))
            ^ (byte >> ((i + 6) % 8))
            ^ (byte >> ((i + 7) % 8))
            ^ (AFFINE_CONSTANT >> i)
        ) & 1
        result |= bit << i
    return result


def generate_sbox() -> tuple[int, ...]:
    """Generate the 256-entry AES S-box from the GF(2^8) inverse map."""
    return tuple(_affine_transform(gf_inverse(x)) for x in range(256))


def generate_inverse_sbox(sbox: tuple[int, ...]) -> tuple[int, ...]:
    """Invert an S-box permutation."""
    inverse = [0] * 256
    for x, y in enumerate(sbox):
        inverse[y] = x
    return tuple(inverse)


#: The forward S-box used by SubBytes.
SBOX: tuple[int, ...] = generate_sbox()

#: The inverse S-box used by InvSubBytes.
INV_SBOX: tuple[int, ...] = generate_inverse_sbox(SBOX)
