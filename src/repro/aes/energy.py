"""Measured per-operation computation energies for the AES modules.

The paper specifies all three modules in Verilog, synthesises them with a
0.16 um library and measures power at 100 MHz (Sec 5.1.1).  The reported
energies *per act of computation* are reproduced here verbatim and used
as the computation-energy inputs of the simulator and of Theorem 1.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .dataflow import (
    MODULE_ADDROUNDKEY,
    MODULE_MIXCOLUMNS,
    MODULE_SUBBYTES_SHIFTROWS,
)

#: Energy per act of computation, in pJ, keyed by module id (Sec 5.1.1):
#: E1 = 120.1 pJ (SubBytes/ShiftRows), E2 = 73.34 pJ (MixColumns),
#: E3 = 176.55 pJ (KeyExpansion/AddRoundKey).
AES_MODULE_ENERGIES_PJ: dict[int, float] = {
    MODULE_SUBBYTES_SHIFTROWS: 120.1,
    MODULE_MIXCOLUMNS: 73.34,
    MODULE_ADDROUNDKEY: 176.55,
}


def module_energy_pj(module: int) -> float:
    """Energy in pJ for one act of computation of ``module``."""
    try:
        return AES_MODULE_ENERGIES_PJ[module]
    except KeyError:
        raise ConfigurationError(
            f"unknown AES module id {module}; expected one of "
            f"{sorted(AES_MODULE_ENERGIES_PJ)}"
        ) from None
