"""AES-128/192/256 application substrate.

The paper drives its e-textile platform with a distributed implementation
of the Advanced Encryption Standard (FIPS-197), partitioned into three
hardware modules (Sec 5.1.1):

* **Module 1** — ``SubBytes`` / ``ShiftRows``
* **Module 2** — ``MixColumns``
* **Module 3** — ``KeyExpansion`` / ``AddRoundKey``

This package implements the complete cipher (encryption and decryption,
all three key sizes), the module partitioning, the per-job operation
dataflow ``(f1, f2, f3) = (10, 9, 11)`` used by the routing formulation,
and the paper's measured per-operation energies.  The simulator carries
real cipher state through the network, so every completed job can be
verified bit-for-bit against :func:`repro.aes.cipher.encrypt_block`.
"""

from .cipher import decrypt_block, encrypt_block, expand_key
from .dataflow import (
    MODULE_ADDROUNDKEY,
    MODULE_MIXCOLUMNS,
    MODULE_SUBBYTES_SHIFTROWS,
    AesJobDataflow,
    Operation,
    operations_per_module,
)
from .energy import AES_MODULE_ENERGIES_PJ, module_energy_pj
from .sbox import INV_SBOX, SBOX

__all__ = [
    "AES_MODULE_ENERGIES_PJ",
    "AesJobDataflow",
    "INV_SBOX",
    "MODULE_ADDROUNDKEY",
    "MODULE_MIXCOLUMNS",
    "MODULE_SUBBYTES_SHIFTROWS",
    "Operation",
    "SBOX",
    "decrypt_block",
    "encrypt_block",
    "expand_key",
    "module_energy_pj",
    "operations_per_module",
]
