"""Arithmetic in the AES finite field GF(2^8).

AES works in GF(2^8) with the reduction polynomial

    m(x) = x^8 + x^4 + x^3 + x + 1      (0x11B)

Bytes are polynomials over GF(2); addition is XOR and multiplication is
carry-less polynomial multiplication modulo ``m(x)``.  These routines are
deliberately written from first principles (no lookup tables) so that the
table-based fast paths elsewhere in the package can be *verified against
them* in the test suite.
"""

from __future__ import annotations

#: The AES reduction polynomial x^8 + x^4 + x^3 + x + 1.
REDUCTION_POLY = 0x11B


def xtime(a: int) -> int:
    """Multiply ``a`` by ``x`` (i.e. 0x02) in GF(2^8).

    This is the primitive used by FIPS-197 Sec 4.2.1: shift left one bit
    and, if the result overflows 8 bits, reduce by XOR with 0x1B.
    """
    a <<= 1
    if a & 0x100:
        a ^= REDUCTION_POLY
    return a & 0xFF


def gf_mul(a: int, b: int) -> int:
    """Multiply two bytes in GF(2^8) by shift-and-add (Russian peasant)."""
    a &= 0xFF
    b &= 0xFF
    product = 0
    while b:
        if b & 1:
            product ^= a
        a = xtime(a)
        b >>= 1
    return product


def gf_pow(a: int, exponent: int) -> int:
    """Raise ``a`` to a non-negative integer power in GF(2^8)."""
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    result = 1
    base = a & 0xFF
    e = exponent
    while e:
        if e & 1:
            result = gf_mul(result, base)
        base = gf_mul(base, base)
        e >>= 1
    return result


def gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2^8), with the AES convention 0 -> 0.

    By Lagrange's theorem the multiplicative group of GF(2^8) has order
    255, so ``a^254`` is the inverse of any non-zero ``a``.
    """
    if a & 0xFF == 0:
        return 0
    return gf_pow(a, 254)


def gf_dot(coefficients: tuple[int, ...], values: tuple[int, ...]) -> int:
    """GF(2^8) dot product: XOR-accumulate ``gf_mul(c, v)`` pairs.

    Used by MixColumns, which multiplies each state column by a fixed
    circulant matrix over GF(2^8).
    """
    if len(coefficients) != len(values):
        raise ValueError(
            f"length mismatch: {len(coefficients)} coefficients "
            f"vs {len(values)} values"
        )
    acc = 0
    for c, v in zip(coefficients, values):
        acc ^= gf_mul(c, v)
    return acc
