"""The complete AES block cipher (FIPS-197 Sec 5.1 / 5.3).

``encrypt_block`` follows the exact pseudo-code reproduced in the paper's
Fig 1; ``decrypt_block`` implements the straightforward inverse cipher.
The distributed execution in :mod:`repro.sim` must produce byte-identical
results to ``encrypt_block`` — this is asserted for every completed job.
"""

from __future__ import annotations

from .key_expansion import round_keys, rounds_for_key
from .state import validate_block
from .transforms import (
    add_round_key,
    inv_mix_columns,
    inv_shift_rows,
    inv_sub_bytes,
    mix_columns,
    shift_rows,
    sub_bytes,
)


def expand_key(key: bytes) -> list[bytes]:
    """Public alias for the round-key schedule (see :mod:`key_expansion`)."""
    return round_keys(key)


def encrypt_block(plaintext: bytes, key: bytes) -> bytes:
    """Encrypt a single 16-byte block under AES with the given key.

    Mirrors the paper's Fig 1: an initial AddRoundKey, ``Nr - 1`` full
    rounds (SubBytes, ShiftRows, MixColumns, AddRoundKey) and a final
    round without MixColumns.  For AES-128 that is 10 SubBytes/ShiftRows
    operations, 9 MixColumns operations and 11 AddRoundKey operations —
    the paper's ``(f1, f2, f3) = (10, 9, 11)``.
    """
    state = validate_block(plaintext, name="plaintext")
    keys = round_keys(key)
    nr = rounds_for_key(key)

    state = add_round_key(state, keys[0])
    for rnd in range(1, nr):
        state = sub_bytes(state)
        state = shift_rows(state)
        state = mix_columns(state)
        state = add_round_key(state, keys[rnd])
    state = sub_bytes(state)
    state = shift_rows(state)
    state = add_round_key(state, keys[nr])
    return state


def decrypt_block(ciphertext: bytes, key: bytes) -> bytes:
    """Decrypt a single 16-byte block (inverse cipher, FIPS-197 Sec 5.3)."""
    state = validate_block(ciphertext, name="ciphertext")
    keys = round_keys(key)
    nr = rounds_for_key(key)

    state = add_round_key(state, keys[nr])
    for rnd in range(nr - 1, 0, -1):
        state = inv_shift_rows(state)
        state = inv_sub_bytes(state)
        state = add_round_key(state, keys[rnd])
        state = inv_mix_columns(state)
    state = inv_shift_rows(state)
    state = inv_sub_bytes(state)
    state = add_round_key(state, keys[0])
    return state
