"""The AES state layout and conversions.

FIPS-197 arranges the 16 input bytes into a 4x4 *state* array column by
column: ``state[r][c] = input[r + 4*c]``.  The transforms in this package
operate directly on the flat 16-byte representation using the index
formula above, which keeps the hot path allocation-free; this module
provides the explicit conversions plus validation helpers used at the
package boundary.
"""

from __future__ import annotations

#: Number of 32-bit words in the state (fixed at 4 for AES).
NB = 4

#: Number of bytes in one AES block.
BLOCK_BYTES = 4 * NB


def validate_block(block: bytes, name: str = "block") -> bytes:
    """Check that ``block`` is exactly one AES block (16 bytes)."""
    if not isinstance(block, (bytes, bytearray)):
        raise TypeError(f"{name} must be bytes, got {type(block).__name__}")
    if len(block) != BLOCK_BYTES:
        raise ValueError(
            f"{name} must be exactly {BLOCK_BYTES} bytes, got {len(block)}"
        )
    return bytes(block)


def bytes_to_grid(block: bytes) -> list[list[int]]:
    """Convert a flat 16-byte block into the 4x4 column-major state grid."""
    validate_block(block)
    return [[block[r + 4 * c] for c in range(NB)] for r in range(4)]


def grid_to_bytes(grid: list[list[int]]) -> bytes:
    """Convert a 4x4 state grid back to the flat 16-byte representation."""
    if len(grid) != 4 or any(len(row) != NB for row in grid):
        raise ValueError("state grid must be 4x4")
    return bytes(grid[r][c] for c in range(NB) for r in range(4))


def state_index(row: int, col: int) -> int:
    """Flat index of state cell ``(row, col)`` in the 16-byte layout."""
    if not (0 <= row < 4 and 0 <= col < NB):
        raise IndexError(f"state cell ({row}, {col}) out of range")
    return row + 4 * col
