"""The distributed-AES job dataflow.

A *job* in the paper is one complete AES encryption of a 128-bit block.
The cipher is partitioned into three modules; each pass of the state
through a module is one *operation* (one "act of computation" followed by
an "act of communication" in the paper's terminology, Sec 3).  For
AES-128 a job therefore consists of 30 operations:

====================  ======================  =====
Module                Function                f_i
====================  ======================  =====
1                     SubBytes / ShiftRows    10
2                     MixColumns              9
3                     KeyExpansion /          11
                      AddRoundKey
====================  ======================  =====

This module encodes that dataflow as an explicit operation sequence so
the simulator can walk a real 16-byte state through the network node by
node, and so the analytical machinery (Theorem 1) can read off the
``f_i`` values directly from the application definition instead of
hard-coding them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .key_expansion import round_keys, rounds_for_key
from .transforms import add_round_key, mix_columns, sub_bytes_shift_rows

#: Paper module ids (Sec 5.1.1).  Module ids are 1-based as in the paper.
MODULE_SUBBYTES_SHIFTROWS = 1
MODULE_MIXCOLUMNS = 2
MODULE_ADDROUNDKEY = 3

#: All module ids of the AES application, in id order.
AES_MODULES: tuple[int, ...] = (
    MODULE_SUBBYTES_SHIFTROWS,
    MODULE_MIXCOLUMNS,
    MODULE_ADDROUNDKEY,
)

#: Human-readable module names used in reports and traces.
MODULE_NAMES: dict[int, str] = {
    MODULE_SUBBYTES_SHIFTROWS: "SubBytes/ShiftRows",
    MODULE_MIXCOLUMNS: "MixColumns",
    MODULE_ADDROUNDKEY: "KeyExpansion/AddRoundKey",
}


@dataclass(frozen=True)
class Operation:
    """One step of the job dataflow.

    Attributes:
        index: Position of the operation in the job (0-based).
        module: Module id (1..3) that must execute this operation.
        round: Cipher round the operation belongs to (0 = initial
            AddRoundKey, ``Nr`` = final round).
    """

    index: int
    module: int
    round: int

    @property
    def name(self) -> str:
        """Readable label, e.g. ``"MixColumns[r3]"``."""
        return f"{MODULE_NAMES[self.module]}[r{self.round}]"


def operation_sequence(rounds: int = 10) -> tuple[Operation, ...]:
    """The ordered operation list for an ``rounds``-round AES encryption.

    Follows the paper's Fig 1 pseudo-code: initial AddRoundKey, then
    ``rounds - 1`` iterations of (SubBytes/ShiftRows, MixColumns,
    AddRoundKey), then a final (SubBytes/ShiftRows, AddRoundKey).
    """
    if rounds < 1:
        raise ValueError(f"AES needs at least 1 round, got {rounds}")
    ops: list[Operation] = [Operation(0, MODULE_ADDROUNDKEY, 0)]
    for rnd in range(1, rounds):
        ops.append(Operation(len(ops), MODULE_SUBBYTES_SHIFTROWS, rnd))
        ops.append(Operation(len(ops), MODULE_MIXCOLUMNS, rnd))
        ops.append(Operation(len(ops), MODULE_ADDROUNDKEY, rnd))
    ops.append(Operation(len(ops), MODULE_SUBBYTES_SHIFTROWS, rounds))
    ops.append(Operation(len(ops), MODULE_ADDROUNDKEY, rounds))
    return tuple(ops)


def operations_per_module(rounds: int = 10) -> dict[int, int]:
    """The ``f_i`` values of the paper's Table 1 for a given round count.

    For the 128-bit AES used throughout the paper this returns
    ``{1: 10, 2: 9, 3: 11}``.
    """
    counts = Counter(op.module for op in operation_sequence(rounds))
    return {module: counts.get(module, 0) for module in AES_MODULES}


class AesJobDataflow:
    """Executable dataflow of one distributed AES job.

    The object owns the key schedule and applies individual operations to
    a carried 16-byte state, which is exactly what a network node does
    when a packet arrives.  It is deliberately independent of any
    network/topology concept: the simulator asks *what* must be computed,
    the routing strategy decides *where*.

    Args:
        key: AES cipher key (16, 24 or 32 bytes).

    Example:
        >>> flow = AesJobDataflow(bytes(16))
        >>> state = bytes(16)
        >>> for op in flow.operations:
        ...     state = flow.apply(op, state)
        >>> from repro.aes.cipher import encrypt_block
        >>> state == encrypt_block(bytes(16), bytes(16))
        True
    """

    def __init__(self, key: bytes):
        self._key = bytes(key)
        self._rounds = rounds_for_key(self._key)
        self._schedule = round_keys(self._key)
        self._operations = operation_sequence(self._rounds)

    @property
    def key(self) -> bytes:
        """The cipher key this dataflow encrypts under."""
        return self._key

    @property
    def rounds(self) -> int:
        """Number of cipher rounds ``Nr``."""
        return self._rounds

    @property
    def operations(self) -> tuple[Operation, ...]:
        """The ordered operation sequence of one job."""
        return self._operations

    @property
    def total_operations(self) -> int:
        """Total number of operations per job (30 for AES-128)."""
        return len(self._operations)

    def operations_per_module(self) -> dict[int, int]:
        """Per-module operation counts, i.e. the paper's ``f_i``."""
        return operations_per_module(self._rounds)

    def module_of(self, op_index: int) -> int:
        """Module id that must execute operation ``op_index``."""
        return self._operations[op_index].module

    def apply(self, op: Operation, state: bytes) -> bytes:
        """Execute one operation on a 16-byte state and return the result."""
        if op.module == MODULE_SUBBYTES_SHIFTROWS:
            return sub_bytes_shift_rows(state)
        if op.module == MODULE_MIXCOLUMNS:
            return mix_columns(state)
        if op.module == MODULE_ADDROUNDKEY:
            return add_round_key(state, self._schedule[op.round])
        raise ValueError(f"operation {op} references unknown module {op.module}")

    def apply_index(self, op_index: int, state: bytes) -> bytes:
        """Execute the operation at position ``op_index`` on ``state``."""
        return self.apply(self._operations[op_index], state)

    def run_reference(self, plaintext: bytes) -> bytes:
        """Run the whole dataflow locally (no network) on ``plaintext``.

        Used by tests and by job verification: the result must equal
        :func:`repro.aes.cipher.encrypt_block`.
        """
        state = bytes(plaintext)
        for op in self._operations:
            state = self.apply(op, state)
        return state
