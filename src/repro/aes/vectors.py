"""Published AES test vectors used to validate the cipher implementation.

The vectors come from FIPS-197 Appendix B / C and from NIST SP 800-38A
(ECB single-block cases).  They are data, not code: the test suite
iterates over them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CipherVector:
    """One known-answer test: ``cipher(key, plaintext) == ciphertext``."""

    name: str
    key: bytes
    plaintext: bytes
    ciphertext: bytes


#: FIPS-197 Appendix B (the worked AES-128 example) and Appendix C
#: (the 128/192/256 known-answer examples), plus SP 800-38A F.1.1.
KNOWN_ANSWER_VECTORS: tuple[CipherVector, ...] = (
    CipherVector(
        name="FIPS-197 Appendix B (AES-128)",
        key=bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"),
        plaintext=bytes.fromhex("3243f6a8885a308d313198a2e0370734"),
        ciphertext=bytes.fromhex("3925841d02dc09fbdc118597196a0b32"),
    ),
    CipherVector(
        name="FIPS-197 Appendix C.1 (AES-128)",
        key=bytes.fromhex("000102030405060708090a0b0c0d0e0f"),
        plaintext=bytes.fromhex("00112233445566778899aabbccddeeff"),
        ciphertext=bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a"),
    ),
    CipherVector(
        name="FIPS-197 Appendix C.2 (AES-192)",
        key=bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f1011121314151617"
        ),
        plaintext=bytes.fromhex("00112233445566778899aabbccddeeff"),
        ciphertext=bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191"),
    ),
    CipherVector(
        name="FIPS-197 Appendix C.3 (AES-256)",
        key=bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f"
            "101112131415161718191a1b1c1d1e1f"
        ),
        plaintext=bytes.fromhex("00112233445566778899aabbccddeeff"),
        ciphertext=bytes.fromhex("8ea2b7ca516745bfeafc49904b496089"),
    ),
    CipherVector(
        name="SP 800-38A F.1.1 ECB-AES128 block 1",
        key=bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"),
        plaintext=bytes.fromhex("6bc1bee22e409f96e93d7e117393172a"),
        ciphertext=bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97"),
    ),
)

#: FIPS-197 Sec 5.1.1 publishes four S-box spot values; more are implied
#: by the Appendix B walk-through.  ``SBOX_SPOT_VALUES[x] == SBOX[x]``.
SBOX_SPOT_VALUES: dict[int, int] = {
    0x00: 0x63,
    0x01: 0x7C,
    0x53: 0xED,
    0xCA: 0x74,
    0x19: 0xD4,
    0x3D: 0x27,
    0xE3: 0x11,
    0xBE: 0xAE,
    0xFF: 0x16,
}

#: First round-key words of the FIPS-197 Appendix A.1 key expansion
#: example for the key 2b7e1516...  ``w[4] .. w[7]`` as hex strings.
KEY_EXPANSION_EXAMPLE_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
KEY_EXPANSION_EXAMPLE_WORDS: dict[int, str] = {
    4: "a0fafe17",
    5: "88542cb1",
    6: "23a33939",
    7: "2a6c7605",
    8: "f2c295f2",
    9: "7a96b943",
    10: "5935807a",
    11: "7359f67f",
    40: "d014f9a8",
    41: "c9ee2589",
    42: "e13f0cc8",
    43: "b6630ca6",
}
