"""Pluggable storage backends for the sweep cache.

One flat directory of ``<hash>.json`` files is fine for a few hundred
sweep points; a million-garment fleet turns it into a directory with a
million entries, which many filesystems handle badly.  The cache
therefore speaks to storage through a small backend protocol:

* ``flat``    — the original one-file-per-key directory (default; old
  caches keep hitting unchanged);
* ``sharded`` — a two-hex-character prefix fan-out
  (``ab/ab12....json``), bounding any single directory at 256 children
  plus the per-shard files;
* ``sqlite``  — a single ``cache.sqlite`` database, one row per key —
  the fewest inodes and the cheapest enumeration at fleet scale.

All backends store the same JSON payload and are safe against
concurrent writers: the directory backends write-then-rename, and the
sqlite backend relies on SQLite's own locking (WAL + busy timeout).
Records written through one directory backend are invisible to the
other layouts by design — pick a backend per cache directory.
"""

from __future__ import annotations

import json
import os
import pathlib
import sqlite3
import tempfile

from ..errors import ConfigurationError

#: Recognised cache backend names.
CACHE_BACKENDS = ("flat", "sharded", "sqlite")

#: Environment variable overriding the default cache backend.
CACHE_BACKEND_ENV = "ETSIM_CACHE_BACKEND"


def default_backend_name() -> str:
    """``$ETSIM_CACHE_BACKEND`` or ``flat``."""
    name = os.environ.get(CACHE_BACKEND_ENV) or "flat"
    if name not in CACHE_BACKENDS:
        raise ConfigurationError(
            f"unknown cache backend {name!r} in ${CACHE_BACKEND_ENV}; "
            f"expected one of {CACHE_BACKENDS}"
        )
    return name


def make_backend(name: str, directory: pathlib.Path):
    """Instantiate the named backend rooted at ``directory``."""
    if name == "flat":
        return FlatDirBackend(directory)
    if name == "sharded":
        return ShardedDirBackend(directory)
    if name == "sqlite":
        return SqliteBackend(directory)
    raise ConfigurationError(
        f"unknown cache backend {name!r}; expected one of {CACHE_BACKENDS}"
    )


def _atomic_write_json(path: pathlib.Path, payload: dict) -> None:
    """Write-then-rename so readers never observe a torn file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=".tmp-", suffix=".json"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _read_json(path: pathlib.Path) -> dict | None:
    try:
        with open(path, encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return record if isinstance(record, dict) else None


def _is_entry(path: pathlib.Path) -> bool:
    return path.suffix == ".json" and not path.name.startswith(".tmp-")


class FlatDirBackend:
    """One ``<key>.json`` file per entry, all in one directory."""

    name = "flat"

    def __init__(self, directory: pathlib.Path):
        self.directory = pathlib.Path(directory)

    def path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> dict | None:
        return _read_json(self.path(key))

    def save(self, key: str, payload: dict) -> None:
        _atomic_write_json(self.path(key), payload)

    def count(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for p in self.directory.iterdir() if _is_entry(p))

    def clear(self) -> int:
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.iterdir():
                if _is_entry(path):
                    path.unlink(missing_ok=True)
                    removed += 1
        return removed


class ShardedDirBackend:
    """Two-hex-prefix directory fan-out: ``<key[:2]>/<key>.json``.

    Keys are SHA-256 hex digests, so the prefix spreads entries evenly
    over at most 256 shard directories.
    """

    name = "sharded"

    def __init__(self, directory: pathlib.Path):
        self.directory = pathlib.Path(directory)

    def path(self, key: str) -> pathlib.Path:
        shard = key[:2] if len(key) >= 2 else "__"
        return self.directory / shard / f"{key}.json"

    def load(self, key: str) -> dict | None:
        return _read_json(self.path(key))

    def save(self, key: str, payload: dict) -> None:
        _atomic_write_json(self.path(key), payload)

    def _shards(self):
        if not self.directory.is_dir():
            return
        for shard in self.directory.iterdir():
            if shard.is_dir() and not shard.name.startswith(".tmp-"):
                yield shard

    def count(self) -> int:
        return sum(
            1
            for shard in self._shards()
            for p in shard.iterdir()
            if _is_entry(p)
        )

    def clear(self) -> int:
        removed = 0
        for shard in self._shards():
            for path in shard.iterdir():
                if _is_entry(path):
                    path.unlink(missing_ok=True)
                    removed += 1
        return removed


class SqliteBackend:
    """All entries as rows of one ``cache.sqlite`` database.

    A fresh connection per operation keeps the backend safe under any
    threading/multiprocessing pattern; SQLite's WAL journal and busy
    timeout arbitrate concurrent writers from separate invocations.
    """

    name = "sqlite"
    filename = "cache.sqlite"

    def __init__(self, directory: pathlib.Path):
        self.directory = pathlib.Path(directory)

    @property
    def database(self) -> pathlib.Path:
        return self.directory / self.filename

    def _connect(self) -> sqlite3.Connection:
        self.directory.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(self.database, timeout=30.0)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute(
            "CREATE TABLE IF NOT EXISTS entries ("
            "key TEXT PRIMARY KEY, payload TEXT NOT NULL)"
        )
        return conn

    def load(self, key: str) -> dict | None:
        if not self.database.is_file():
            return None
        try:
            conn = self._connect()
        except sqlite3.Error:
            return None
        try:
            row = conn.execute(
                "SELECT payload FROM entries WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.Error:
            return None
        finally:
            conn.close()
        if row is None:
            return None
        try:
            record = json.loads(row[0])
        except json.JSONDecodeError:
            return None
        return record if isinstance(record, dict) else None

    def save(self, key: str, payload: dict) -> None:
        text = json.dumps(payload, sort_keys=True)
        with self._connect() as conn:
            conn.execute(
                "INSERT INTO entries (key, payload) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET payload = excluded.payload",
                (key, text),
            )
        conn.close()

    def count(self) -> int:
        if not self.database.is_file():
            return 0
        try:
            conn = self._connect()
        except sqlite3.Error:
            return 0
        try:
            (n,) = conn.execute("SELECT COUNT(*) FROM entries").fetchone()
        except sqlite3.Error:
            return 0
        finally:
            conn.close()
        return int(n)

    def clear(self) -> int:
        if not self.database.is_file():
            return 0
        with self._connect() as conn:
            cursor = conn.execute("DELETE FROM entries")
        conn.close()
        return cursor.rowcount
