"""Content-addressed result cache for sweep points.

A finished sweep point is summarised by a plain JSON record (the
``SimulationStats.summary()`` dict plus the point's labels).  Because a
run is fully determined by its :class:`~repro.config.SimulationConfig`,
the SHA-256 hash of the canonical JSON form of that configuration is a
sound cache key: repeated benchmark or CI invocations of the same grid
load the stored records instead of re-simulating.

Invalidation is by construction: any change to a configuration value
changes the key, and :data:`CACHE_SCHEMA_VERSION` is mixed into every
key so that simulator-behaviour changes can globally invalidate old
entries with a one-line bump.  Storage is pluggable
(:mod:`~repro.orchestration.backends`): the default flat directory of
one atomically-written file per key, a two-hex-prefix sharded layout,
or a sqlite database — all safe to share between concurrent workers
and parallel CI jobs.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import time

from ..config import SimulationConfig
from .backends import default_backend_name, make_backend

#: Bump when simulator behaviour changes in a way that invalidates
#: previously cached summaries (engine semantics, summary fields, ...).
#: v2: fault-injection subsystem — configs carry a ``faults`` section
#: and summaries gained the per-fault accounting counters.
#: v3: correlated tear/moisture profiles, repair events and the
#: wear-aware weight — configs gained ``wear_*`` knobs and fault
#: parameters, summaries gained ``links_repaired``, and the controller
#: energy-accounting fixes (dead-node table diffs, delivered idle leak)
#: changed existing records.
#: v4: energy-harvesting subsystem — configs gained a ``harvest``
#: section, ``harvest_*`` knobs and the fault repair-crew/corrosion
#: parameters; summaries gained ``harvested_pj`` / ``shared_pj`` /
#: ``harvest_events``.
#: v5: heterogeneous harvest hardware and the multi-hop power bus —
#: the ``harvest`` section gained a nested ``hardware`` spec and
#: ``share_max_hops``, the platform gained the ``harvest-proportional``
#: mapping strategy, and summaries gained ``share_hops``.
CACHE_SCHEMA_VERSION = 5

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "ETSIM_CACHE_DIR"

#: Default cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".etsim_cache"


def config_hash(config: SimulationConfig) -> str:
    """Stable content hash of one simulation configuration.

    The ``engine`` field is normalised out of the payload whenever it
    resolves to the same engine ``"auto"`` would pick: those runs are
    identical simulations, and entries cached before the field existed
    (whose serialised form had no ``engine`` key) must keep hitting.
    Only a genuinely overriding engine choice (e.g. ``"vector"`` on a
    sequential workload) enters the hash.
    """
    data = config.to_dict()
    auto = (
        "concurrent"
        if config.workload.kind == "concurrent"
        else "sequential"
    )
    if config.resolved_engine() == auto:
        data.pop("engine", None)
    payload = json.dumps(
        {"schema": CACHE_SCHEMA_VERSION, "config": data},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def default_cache_dir() -> pathlib.Path:
    """The cache directory: ``$ETSIM_CACHE_DIR`` or ``.etsim_cache``."""
    return pathlib.Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


class SweepCache:
    """Disk-backed config-hash -> summary-record store.

    Args:
        directory: Cache root; created lazily on first store.
            ``None`` selects :func:`default_cache_dir`.
        backend: Storage layout — a name from
            :data:`~repro.orchestration.backends.CACHE_BACKENDS`
            (``flat``/``sharded``/``sqlite``), an already-constructed
            backend object, or ``None`` for ``$ETSIM_CACHE_BACKEND``
            falling back to the original flat layout (old caches keep
            hitting unchanged).
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        backend: str | object | None = None,
    ):
        self.directory = pathlib.Path(
            directory if directory is not None else default_cache_dir()
        )
        if backend is None or isinstance(backend, str):
            name = backend if backend is not None else default_backend_name()
            self.backend = make_backend(name, self.directory)
        else:
            self.backend = backend
        self.backend_name = getattr(self.backend, "name", "custom")
        self.hits = 0
        self.misses = 0
        #: Cumulative wall-clock seconds spent in backend I/O, kept
        #: always-on (two clock reads per operation are noise next to
        #: the file/db access they bracket) so sweep and fleet
        #: summaries can report cache cost without a recorder.
        self.time_lookup_s = 0.0
        self.time_store_s = 0.0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> pathlib.Path:
        """Entry location (directory backends only; tests poke at it)."""
        return self.backend.path(key)

    def lookup(self, key: str) -> dict | None:
        """Stored record for ``key``; None (and a miss) when absent."""
        started = time.perf_counter()
        record = self.backend.load(key)
        self.time_lookup_s += time.perf_counter() - started
        if record is None or record.get("schema") != CACHE_SCHEMA_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def store(self, key: str, record: dict) -> None:
        """Atomically persist one finished point's record."""
        payload = dict(record)
        payload["schema"] = CACHE_SCHEMA_VERSION
        started = time.perf_counter()
        self.backend.save(key, payload)
        self.time_store_s += time.perf_counter() - started

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.backend.count()

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed.

        In-progress ``.tmp-*`` files are left alone by the directory
        backends: a concurrent writer mid-``store`` must still be able
        to complete its rename.
        """
        return self.backend.clear()

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.time_lookup_s = 0.0
        self.time_store_s = 0.0

    def counters(self) -> dict:
        """JSON-safe snapshot of the cache's activity counters."""
        return {
            "backend": self.backend_name,
            "hits": self.hits,
            "misses": self.misses,
            "lookup_s": round(self.time_lookup_s, 6),
            "store_s": round(self.time_store_s, 6),
        }
