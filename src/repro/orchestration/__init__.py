"""Parallel experiment orchestration for et_sim sweeps.

Every evaluation artifact of the paper — Fig 7 (mesh size x routing),
Fig 8 (mesh size x controller count), Table 2 (ideal-battery bounds) —
is a family of *independent* simulation runs, each fully described by a
:class:`~repro.config.SimulationConfig`.  This package turns that
independence into throughput:

* :class:`~repro.orchestration.runner.ParallelSweepRunner` fans sweep
  points out over a process pool with deterministic per-point seeding
  (records are bit-identical to a sequential run, whatever the worker
  count);
* :class:`~repro.orchestration.cache.SweepCache` memoises finished
  points by a content hash of their configuration, so repeated
  benchmark/CI invocations skip already-computed simulations;
* :mod:`~repro.orchestration.scenarios` is a registry that generates
  the paper's sweep grids — plus larger meshes, mixed workloads and
  battery ablations — at ``smoke``/``quick``/``full`` scales.
"""

from .backends import (
    CACHE_BACKEND_ENV,
    CACHE_BACKENDS,
    FlatDirBackend,
    ShardedDirBackend,
    SqliteBackend,
    default_backend_name,
    make_backend,
)
from .cache import SweepCache, config_hash
from .runner import (
    ParallelSweepRunner,
    SequentialSweepRunner,
    SweepPoint,
    SweepRecord,
    SweepRunner,
    make_runner,
)
from .scenarios import (
    GOLDEN_SMOKE_POINTS,
    build_scenario,
    controller_grid,
    derive_seed,
    mesh_routing_grid,
    scenario,
    scenario_names,
    scenarios,
)

__all__ = [
    "CACHE_BACKEND_ENV",
    "CACHE_BACKENDS",
    "FlatDirBackend",
    "GOLDEN_SMOKE_POINTS",
    "ParallelSweepRunner",
    "SequentialSweepRunner",
    "ShardedDirBackend",
    "SqliteBackend",
    "SweepCache",
    "SweepPoint",
    "SweepRecord",
    "SweepRunner",
    "build_scenario",
    "config_hash",
    "controller_grid",
    "default_backend_name",
    "derive_seed",
    "make_backend",
    "make_runner",
    "mesh_routing_grid",
    "scenario",
    "scenario_names",
    "scenarios",
]
