"""Scenario registry: programmatic generation of sweep grids.

Each scenario turns a scale (``smoke`` / ``quick`` / ``full``) into the
list of :class:`~repro.orchestration.runner.SweepPoint` it evaluates:

* the paper's own grids — ``fig7`` (mesh x routing), ``fig8``
  (mesh x controller count), ``table2`` (ideal-battery bounds);
* extensions the paper's machinery makes natural — ``large-mesh``
  (beyond the paper's 8x8), ``mixed-workload`` (concurrent jobs with
  per-point derived seeds), ``battery-ablation`` (capacity scaling).

``smoke`` grids are sized for CI (seconds, bounded job counts),
``full`` grids reproduce the paper's figures.  Grid builders are also
exported directly (:func:`mesh_routing_grid`, :func:`controller_grid`)
for callers composing their own sweeps.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Callable

from ..config import RoutingOptions, SimulationConfig
from ..errors import ConfigurationError
from ..faults import FaultConfig
from ..harvest import HarvestConfig, HarvestHardware
from .runner import SweepPoint

#: Recognised grid scales.
SCALES = ("smoke", "quick", "full")

#: The golden-traced smoke points: one ``(scenario, label, filename)``
#: triple per stored fixture under ``tests/golden/``.  The regression
#: tests and the ``python -m repro regen-golden`` helper both read this
#: list, so adding a fixture (or a summary key) is a one-place change.
GOLDEN_SMOKE_POINTS = (
    ("fig7", "4x4/ear", "fig7_smoke_4x4_ear.json"),
    ("fig8", "4x4/1ctl", "fig8_smoke_4x4_1ctl.json"),
    ("table2", "4x4/ear", "table2_smoke_4x4_ear.json"),
    # One point per engine (sequential and concurrent) for the
    # scenario families whose machinery differs between code paths.
    ("tear-repair", "4x4/ear", "tear_repair_smoke_4x4_ear.json"),
    ("tear-repair", "4x4/ear/conc", "tear_repair_smoke_4x4_ear_conc.json"),
    ("harvest-motion", "4x4/ear", "harvest_motion_smoke_4x4_ear.json"),
    (
        "harvest-motion",
        "4x4/ear/conc",
        "harvest_motion_smoke_4x4_ear_conc.json",
    ),
    ("harvest-mapping", "4x4/income", "harvest_mapping_smoke_4x4.json"),
    (
        "harvest-mapping",
        "4x4/income/conc",
        "harvest_mapping_smoke_4x4_conc.json",
    ),
    # Vector-engine traces: one plain and one harvesting point, so the
    # frame-batched draw, recharge and heartbeat paths are all pinned.
    ("vector-mesh", "6x6/ear/vec", "vector_mesh_smoke_6x6_ear.json"),
    (
        "vector-mesh",
        "6x6/ear/harvest/vec",
        "vector_mesh_smoke_6x6_harvest.json",
    ),
    # One sampled garment of the fleet smoke preset, pinning the whole
    # (fleet_seed, index) -> SimulationConfig sampling chain.
    ("fleet", "g0000/4x4", "fleet_smoke_g0000.json"),
    # Congestion pair: measure-only baseline (neutral q tracks load
    # without changing weights) and the ECMP + congestion-penalty
    # relief point, pinning the load-telemetry path end to end.
    ("congestion-relief", "4x4/base", "congestion_relief_smoke_4x4_base.json"),
    (
        "congestion-relief",
        "4x4/relief",
        "congestion_relief_smoke_4x4_relief.json",
    ),
)

#: Builder signature: (scale, base config) -> sweep points.
ScenarioBuilder = Callable[[str, SimulationConfig], list[SweepPoint]]


def derive_seed(base_seed: int, label: str) -> int:
    """Deterministic per-point seed: stable across runs, processes and
    worker counts (no dependence on execution order)."""
    digest = hashlib.sha256(f"{base_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def _check_scale(scale: str) -> None:
    if scale not in SCALES:
        raise ConfigurationError(
            f"unknown scale {scale!r}; expected one of {SCALES}"
        )


def _cap_jobs(config: SimulationConfig, max_jobs: int) -> SimulationConfig:
    return replace(
        config, workload=replace(config.workload, max_jobs=max_jobs)
    )


# ----------------------------------------------------------------------
# Reusable grid builders
# ----------------------------------------------------------------------
def mesh_routing_grid(
    base: SimulationConfig,
    widths: tuple[int, ...],
    routings: tuple[str, ...] = ("ear", "sdr"),
) -> list[SweepPoint]:
    """The Fig 7 shape: mesh width x routing algorithm."""
    points = []
    for width in widths:
        for routing in routings:
            config = replace(
                base,
                platform=replace(base.platform, mesh_width=width),
                routing=routing,
            )
            points.append(
                SweepPoint(
                    label=f"{width}x{width}/{routing}",
                    config=config,
                    params={"mesh": f"{width}x{width}", "routing": routing},
                )
            )
    return points


def controller_grid(
    base: SimulationConfig,
    widths: tuple[int, ...],
    controller_counts: tuple[int, ...],
) -> list[SweepPoint]:
    """The Fig 8 shape: mesh width x finite-battery controller count."""
    points = []
    for count in controller_counts:
        for width in widths:
            control = replace(
                base.control,
                num_controllers=count,
                controller_battery="thin-film",
            )
            config = replace(
                base,
                platform=replace(base.platform, mesh_width=width),
                control=control,
            )
            points.append(
                SweepPoint(
                    label=f"{width}x{width}/{count}ctl",
                    config=config,
                    params={
                        "mesh": f"{width}x{width}",
                        "controllers": count,
                    },
                )
            )
    return points


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """A named, scale-aware sweep grid generator."""

    name: str
    description: str
    builder: ScenarioBuilder

    def build(
        self, scale: str = "full", base: SimulationConfig | None = None
    ) -> list[SweepPoint]:
        _check_scale(scale)
        return self.builder(
            scale, base if base is not None else SimulationConfig()
        )


_REGISTRY: dict[str, Scenario] = {}


def scenario(name: str, description: str):
    """Decorator registering a scenario builder under ``name``."""

    def register(builder: ScenarioBuilder) -> ScenarioBuilder:
        if name in _REGISTRY:
            raise ConfigurationError(f"scenario {name!r} already registered")
        _REGISTRY[name] = Scenario(name, description, builder)
        return builder

    return register


def scenarios() -> dict[str, Scenario]:
    """All registered scenarios, keyed by name."""
    return dict(_REGISTRY)


def scenario_names() -> tuple[str, ...]:
    return tuple(_REGISTRY)


def build_scenario(
    name: str,
    scale: str = "full",
    base: SimulationConfig | None = None,
) -> list[SweepPoint]:
    """Generate the sweep points of the named scenario."""
    try:
        entry = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: {', '.join(_REGISTRY)}"
        ) from None
    return entry.build(scale, base)


# ----------------------------------------------------------------------
# Paper grids
# ----------------------------------------------------------------------
@scenario("fig7", "Fig 7: jobs under EAR vs SDR across mesh sizes")
def _fig7(scale: str, base: SimulationConfig) -> list[SweepPoint]:
    widths = {"smoke": (4,), "quick": (4, 5), "full": (4, 5, 6, 7, 8)}[scale]
    if scale == "smoke":
        base = _cap_jobs(base, 8)
    return mesh_routing_grid(base, widths)


@scenario("fig8", "Fig 8: lifetime vs controller count across mesh sizes")
def _fig8(scale: str, base: SimulationConfig) -> list[SweepPoint]:
    widths = {"smoke": (4,), "quick": (4, 5), "full": (4, 5, 6, 7, 8)}[scale]
    counts = {"smoke": (1, 2), "quick": (1, 2, 4), "full": (1, 2, 4, 7, 10)}[
        scale
    ]
    if scale == "smoke":
        base = _cap_jobs(base, 8)
    return controller_grid(base, widths, counts)


@scenario("table2", "Table 2: EAR under the ideal battery (bound ratios)")
def _table2(scale: str, base: SimulationConfig) -> list[SweepPoint]:
    widths = {"smoke": (4,), "quick": (4, 5), "full": (4, 5, 6, 7, 8)}[scale]
    if scale == "smoke":
        base = _cap_jobs(base, 8)
    base = replace(
        base, platform=replace(base.platform, battery_model="ideal")
    )
    return mesh_routing_grid(base, widths, routings=("ear",))


# ----------------------------------------------------------------------
# Extensions beyond the paper
# ----------------------------------------------------------------------
@scenario("large-mesh", "EAR vs SDR beyond the paper's 8x8 meshes")
def _large_mesh(scale: str, base: SimulationConfig) -> list[SweepPoint]:
    widths = {"smoke": (6,), "quick": (10,), "full": (10, 12, 16)}[scale]
    # Larger fabrics are job-capped even at full scale: the point is
    # routing behaviour at scale, not multi-minute runs to system death.
    caps = {"smoke": 8, "quick": 40, "full": 120}
    base = _cap_jobs(base, caps[scale])
    return mesh_routing_grid(base, widths)


@scenario("mixed-workload", "concurrent jobs at varying concurrency")
def _mixed_workload(scale: str, base: SimulationConfig) -> list[SweepPoint]:
    widths = {"smoke": (4,), "quick": (4, 5), "full": (4, 5, 6)}[scale]
    levels = {"smoke": (2,), "quick": (2, 4), "full": (2, 4, 8)}[scale]
    caps = {"smoke": 8, "quick": 30, "full": 60}
    points = []
    for width in widths:
        for concurrency in levels:
            label = f"{width}x{width}/c{concurrency}"
            workload = replace(
                base.workload,
                kind="concurrent",
                concurrency=concurrency,
                max_jobs=caps[scale],
                seed=derive_seed(base.workload.seed, label),
            )
            config = replace(
                base,
                platform=replace(base.platform, mesh_width=width),
                workload=workload,
            )
            points.append(
                SweepPoint(
                    label=label,
                    config=config,
                    params={
                        "mesh": f"{width}x{width}",
                        "concurrency": concurrency,
                    },
                )
            )
    return points


@scenario("fig7-faulty", "Fig 7 under link-attrition faults (EAR vs SDR)")
def _fig7_faulty(scale: str, base: SimulationConfig) -> list[SweepPoint]:
    """The paper's headline comparison on a physically degrading fabric:
    permanent link cuts arrive while the system runs, so EAR's advantage
    is measured against topology attrition, not only battery exhaustion.
    """
    widths = {"smoke": (4,), "quick": (4, 5), "full": (4, 5, 6)}[scale]
    if scale == "smoke":
        base = _cap_jobs(base, 8)
    points = []
    for width in widths:
        for routing in ("ear", "sdr"):
            label = f"{width}x{width}/{routing}/attrition"
            faults = FaultConfig(
                profile="link-attrition",
                seed=derive_seed(base.workload.seed, label),
            )
            config = replace(
                base,
                platform=replace(base.platform, mesh_width=width),
                routing=routing,
                faults=faults,
            )
            points.append(
                SweepPoint(
                    label=label,
                    config=config,
                    params={
                        "mesh": f"{width}x{width}",
                        "routing": routing,
                        "fault_profile": "link-attrition",
                    },
                )
            )
    return points


@scenario("link-attrition", "lifetime under progressive permanent link cuts")
def _link_attrition(scale: str, base: SimulationConfig) -> list[SweepPoint]:
    intensities = {
        "smoke": (1.0,),
        "quick": (0.5, 1.0, 2.0),
        "full": (0.25, 0.5, 1.0, 2.0, 4.0),
    }[scale]
    if scale == "smoke":
        base = _cap_jobs(base, 8)
    points = []
    for intensity in intensities:
        for routing in ("ear", "sdr"):
            label = f"x{intensity:g}/{routing}"
            faults = FaultConfig(
                profile="link-attrition",
                intensity=intensity,
                seed=derive_seed(base.workload.seed, f"link-attrition/{label}"),
            )
            config = replace(base, routing=routing, faults=faults)
            points.append(
                SweepPoint(
                    label=label,
                    config=config,
                    params={
                        "fault_intensity": intensity,
                        "routing": routing,
                        "fault_profile": "link-attrition",
                    },
                )
            )
    return points


@scenario("wash-cycle", "periodic transient link degradation (wash stress)")
def _wash_cycle(scale: str, base: SimulationConfig) -> list[SweepPoint]:
    factors = {
        "smoke": (3.0,),
        "quick": (2.0, 4.0),
        "full": (1.5, 3.0, 6.0),
    }[scale]
    if scale == "smoke":
        base = _cap_jobs(base, 8)
    points = []
    for factor in factors:
        for routing in ("ear", "sdr"):
            label = f"deg{factor:g}/{routing}"
            faults = FaultConfig(
                profile="wash-cycle",
                degrade_factor=factor,
                period_frames=4,
                seed=derive_seed(base.workload.seed, f"wash-cycle/{label}"),
            )
            config = replace(base, routing=routing, faults=faults)
            points.append(
                SweepPoint(
                    label=label,
                    config=config,
                    params={
                        "degrade_factor": factor,
                        "routing": routing,
                        "fault_profile": "wash-cycle",
                    },
                )
            )
    return points


@scenario("tear-repair", "correlated tear bursts with re-sewn repairs")
def _tear_repair(scale: str, base: SimulationConfig) -> list[SweepPoint]:
    """Spatially correlated damage and recovery: each tear severs a
    whole neighbourhood of adjacent links in one event, and every cut
    line is re-sewn a fixed number of frames later.  The smoke grid
    pins one point per engine (sequential and concurrent) so the
    golden traces cover both code paths.
    """
    widths = {"smoke": (4,), "quick": (4, 5), "full": (4, 5, 6)}[scale]
    kinds = {
        "smoke": ("sequential", "concurrent"),
        "quick": ("sequential",),
        "full": ("sequential",),
    }[scale]
    routings = {"smoke": ("ear",), "quick": ("ear", "sdr"),
                "full": ("ear", "sdr")}[scale]
    caps = {"smoke": 8, "quick": 30, "full": None}
    points = []
    for width in widths:
        for kind in kinds:
            for routing in routings:
                suffix = "/conc" if kind == "concurrent" else ""
                label = f"{width}x{width}/{routing}{suffix}"
                # A full-fraction tear on a small mesh routinely rips
                # the source corner out before any repair can land;
                # 15 % keeps the scenario about surviving *through* the
                # cut-repair cycle rather than instant death.
                faults = FaultConfig(
                    profile="tear",
                    max_link_fraction=0.15,
                    repair_after_frames=24,
                    seed=derive_seed(
                        base.workload.seed, f"tear-repair/{label}"
                    ),
                )
                workload = replace(
                    base.workload,
                    kind=kind,
                    concurrency=4 if kind == "concurrent" else 1,
                    max_jobs=caps[scale],
                )
                config = replace(
                    base,
                    platform=replace(base.platform, mesh_width=width),
                    workload=workload,
                    routing=routing,
                    faults=faults,
                )
                points.append(
                    SweepPoint(
                        label=label,
                        config=config,
                        params={
                            "mesh": f"{width}x{width}",
                            "routing": routing,
                            "workload": kind,
                            "fault_profile": "tear",
                            "repair_after_frames": 24,
                        },
                    )
                )
    return points


@scenario("wear-aware", "wear-prediction weight vs reactive EAR under faults")
def _wear_aware(scale: str, base: SimulationConfig) -> list[SweepPoint]:
    """The ROADMAP's fault-aware-routing item, measured: the same
    link-attrition schedule routed reactively (plain EAR) and with the
    wear-prediction weight that penalises high-traversal lines before
    they sever.
    """
    intensities = {
        "smoke": (1.0,),
        "quick": (0.5, 1.0),
        "full": (0.5, 1.0, 2.0),
    }[scale]
    if scale == "smoke":
        base = _cap_jobs(base, 8)
    points = []
    for intensity in intensities:
        faults = FaultConfig(
            profile="link-attrition",
            intensity=intensity,
            seed=derive_seed(
                base.workload.seed, f"wear-aware/x{intensity:g}"
            ),
        )
        for strategy, wear_aware in (("reactive", False), ("wear", True)):
            config = replace(
                base, routing="ear", faults=faults, wear_aware=wear_aware
            )
            points.append(
                SweepPoint(
                    label=f"x{intensity:g}/{strategy}",
                    config=config,
                    params={
                        "fault_intensity": intensity,
                        "strategy": strategy,
                        "fault_profile": "link-attrition",
                    },
                )
            )
    return points


@scenario("harvest-motion", "motion-harvest income on EAR (both engines)")
def _harvest_motion(scale: str, base: SimulationConfig) -> list[SweepPoint]:
    """The harvesting scenario axis: triboelectric motion income
    concentrated on high-flex nodes recharges batteries while the
    system runs.  The smoke grid pins one point per engine (sequential
    and concurrent) so the golden traces cover the recharge path of
    both code paths.
    """
    widths = {"smoke": (4,), "quick": (4, 5), "full": (4, 5, 6)}[scale]
    kinds = {
        "smoke": ("sequential", "concurrent"),
        "quick": ("sequential",),
        "full": ("sequential",),
    }[scale]
    routings = {"smoke": ("ear",), "quick": ("ear", "sdr"),
                "full": ("ear", "sdr")}[scale]
    # The smoke cap is a little higher than elsewhere: the run must
    # span enough activity windows that both golden points actually
    # recharge (a short run can land entirely in idle windows).
    caps = {"smoke": 20, "quick": 30, "full": None}
    points = []
    for width in widths:
        for kind in kinds:
            for routing in routings:
                suffix = "/conc" if kind == "concurrent" else ""
                label = f"{width}x{width}/{routing}{suffix}"
                harvest = HarvestConfig(
                    profile="motion",
                    seed=derive_seed(
                        base.workload.seed, f"harvest-motion/{label}"
                    ),
                )
                workload = replace(
                    base.workload,
                    kind=kind,
                    concurrency=4 if kind == "concurrent" else 1,
                    max_jobs=caps[scale],
                )
                config = replace(
                    base,
                    platform=replace(base.platform, mesh_width=width),
                    workload=workload,
                    routing=routing,
                    harvest=harvest,
                )
                points.append(
                    SweepPoint(
                        label=label,
                        config=config,
                        params={
                            "mesh": f"{width}x{width}",
                            "routing": routing,
                            "workload": kind,
                            "harvest_profile": "motion",
                        },
                    )
                )
    return points


@scenario("harvest-aware", "harvest-aware EAR vs reactive EAR on one income schedule")
def _harvest_aware(scale: str, base: SimulationConfig) -> list[SweepPoint]:
    """The harvest-routing question, measured: the same motion-harvest
    income schedule routed reactively (plain EAR, income only visible
    once it raises battery reports) and with the harvest-bonus weight
    that steers traffic toward energy-rich regions while their cells
    are still full.  Amplitudes (and the harvest-weight defaults) are
    calibrated so harvest-aware completes at least as many jobs as
    reactive EAR on every pair of this grid.
    """
    amplitudes = {
        "smoke": (60.0,),
        "quick": (60.0, 100.0),
        "full": (60.0, 80.0, 100.0, 120.0),
    }[scale]
    if scale == "smoke":
        base = _cap_jobs(base, 8)
    points = []
    for amplitude in amplitudes:
        harvest = HarvestConfig(
            profile="motion",
            amplitude_pj=amplitude,
            seed=derive_seed(
                base.workload.seed, f"harvest-aware/a{amplitude:g}"
            ),
        )
        for strategy, harvest_aware in (("reactive", False), ("aware", True)):
            config = replace(
                base,
                routing="ear",
                harvest=harvest,
                harvest_aware=harvest_aware,
            )
            points.append(
                SweepPoint(
                    label=f"a{amplitude:g}/{strategy}",
                    config=config,
                    params={
                        "amplitude_pj": amplitude,
                        "strategy": strategy,
                        "harvest_profile": "motion",
                    },
                )
            )
    return points


@scenario(
    "harvest-mapping",
    "income-aware duplicate placement vs reactive proportional mapping",
)
def _harvest_mapping(scale: str, base: SimulationConfig) -> list[SweepPoint]:
    """The build-time counterpart of harvest-aware routing: on a fabric
    where only some nodes carry generators (heterogeneous hardware),
    the same income schedule is run with the plain Theorem-1
    proportional mapping (reactive — placement ignores income) and with
    the income-aware ``harvest-proportional`` strategy that puts the
    energy-hungry duplicates where the income is.  The smoke grid pins
    one income-aware point per engine for the golden traces; quick and
    full pair the strategies on every width for the jobs comparison.
    """
    widths = {"smoke": (4,), "quick": (4, 5), "full": (4, 5, 6)}[scale]
    kinds = {
        "smoke": ("sequential", "concurrent"),
        "quick": ("sequential",),
        "full": ("sequential",),
    }[scale]
    strategies = {
        "smoke": (("income", "harvest-proportional"),),
        "quick": (
            ("reactive", "proportional"),
            ("income", "harvest-proportional"),
        ),
        "full": (
            ("reactive", "proportional"),
            ("income", "harvest-proportional"),
        ),
    }[scale]
    caps = {"smoke": 20, "quick": None, "full": None}
    points = []
    for width in widths:
        # A strongly heterogeneous platform: a quarter of the nodes
        # carry powerful generators at the high-flex sites.  Calibrated
        # (with the mapper's default income bias) so the income-aware
        # placement completes at least as many jobs as the reactive
        # proportional mapping on every pair of the quick grid.
        harvest = HarvestConfig(
            profile="motion",
            amplitude_pj=300.0,
            hardware=HarvestHardware(
                equipped_fraction=0.25, placement="flex"
            ),
            seed=derive_seed(
                base.workload.seed, f"harvest-mapping/{width}x{width}"
            ),
        )
        for kind in kinds:
            for strategy, mapping_strategy in strategies:
                suffix = "/conc" if kind == "concurrent" else ""
                label = f"{width}x{width}/{strategy}{suffix}"
                workload = replace(
                    base.workload,
                    kind=kind,
                    concurrency=4 if kind == "concurrent" else 1,
                    max_jobs=caps[scale],
                )
                config = replace(
                    base,
                    platform=replace(
                        base.platform,
                        mesh_width=width,
                        mapping_strategy=mapping_strategy,
                    ),
                    workload=workload,
                    routing="ear",
                    harvest=harvest,
                )
                points.append(
                    SweepPoint(
                        label=label,
                        config=config,
                        params={
                            "mesh": f"{width}x{width}",
                            "strategy": strategy,
                            "mapping": mapping_strategy,
                            "workload": kind,
                            "harvest_profile": "motion",
                        },
                    )
                )
    return points


def _frame_cycles_for(base: SimulationConfig, width: int) -> int:
    """A frame length that fits the TDMA control section of a
    ``width`` x ``width`` mesh (the section grows with the node count),
    never shrinking the configured one."""
    needed = base.control.frame_cycles
    while needed < 8 * width * width * 2:
        needed *= 2
    return needed


def _mesh_point(
    base: SimulationConfig,
    width: int,
    *,
    engine: str,
    max_jobs: int | None,
    routing: str = "ear",
    harvest: HarvestConfig | None = None,
    battery: str | None = None,
) -> SimulationConfig:
    """One large-fabric configuration on the named engine."""
    platform = replace(base.platform, mesh_width=width)
    if battery is not None:
        platform = replace(platform, battery_model=battery)
    return replace(
        base,
        platform=platform,
        control=replace(
            base.control, frame_cycles=_frame_cycles_for(base, width)
        ),
        workload=replace(base.workload, max_jobs=max_jobs),
        routing=routing,
        harvest=harvest if harvest is not None else base.harvest,
        engine=engine,
    )


@scenario("vector-mesh", "large fabrics on the vectorised engine")
def _vector_mesh(scale: str, base: SimulationConfig) -> list[SweepPoint]:
    """Body-scale fabrics, practical only on the vector engine: smoke
    pins small golden points (one plain, one harvesting), quick runs a
    16x16, and full runs the 32x32 family the ROADMAP asks for.

    Fabrics of 24x24 and beyond run on the ideal battery model: with
    every job funnelling through the source's neighbours, a thin-film
    cell there sustains ~1 pJ/cycle of relay power and IR sag kills it
    within a frame or two at *any* capacity — honest physics, but it
    reduces the point to a two-frame run.  The ideal model keeps the
    scaling family about scale.
    """
    grids = {
        "smoke": ((6, 8),),
        "quick": ((16, 60),),
        "full": ((16, 120), (24, 120), (32, 120)),
    }[scale]
    points = []
    for width, cap in grids:
        for routing in ("ear", "sdr") if scale == "full" else ("ear",):
            label = f"{width}x{width}/{routing}/vec"
            config = _mesh_point(
                base, width, engine="vector", max_jobs=cap, routing=routing,
                battery="ideal" if width >= 24 else None,
            )
            points.append(
                SweepPoint(
                    label=label,
                    config=config,
                    params={
                        "mesh": f"{width}x{width}",
                        "routing": routing,
                        "engine": "vector",
                    },
                )
            )
    if scale == "smoke":
        # The harvesting golden point exercises the vector recharge and
        # income-event paths.
        width, cap = grids[0]
        harvest = HarvestConfig(
            profile="motion",
            seed=derive_seed(base.workload.seed, "vector-mesh/harvest"),
        )
        config = _mesh_point(
            base, width, engine="vector", max_jobs=cap, harvest=harvest
        )
        points.append(
            SweepPoint(
                label=f"{width}x{width}/ear/harvest/vec",
                config=config,
                params={
                    "mesh": f"{width}x{width}",
                    "routing": "ear",
                    "engine": "vector",
                    "harvest_profile": "motion",
                },
            )
        )
    return points


@scenario("engine-speed", "sequential vs vector engine on one 16x16 point")
def _engine_speed(scale: str, base: SimulationConfig) -> list[SweepPoint]:
    """The perf-trajectory pair: the same 16x16 configuration on the
    sequential and the vector engine.

    The point is deliberately frame-dominated: slow low-power modules
    (one TDMA frame per operation) stretch each job across ~30 frames,
    and the capacity is scaled up so the run finishes without
    battery-level churn.  That is the regime the vector engine exists
    for — per-frame heartbeat/battery bookkeeping dwarfs both the
    shared routing (Floyd-Warshall) cost and the per-job walk, on the
    sequential engine it scales with the node count, and on the vector
    engine it is a handful of array operations.  The committed
    ``BENCH_smoke.json`` baseline records both timings; the
    bench-regression CI step guards the ratio.
    """
    caps = {"smoke": 80, "quick": 80, "full": 160}
    width = 16
    points = []
    for engine in ("sequential", "vector"):
        config = _mesh_point(
            base, width, engine=engine, max_jobs=caps[scale]
        )
        slow_modules = {
            module: _frame_cycles_for(base, width)
            for module in config.platform.compute_cycles
        }
        config = replace(
            config,
            platform=replace(
                config.platform,
                battery_capacity_pj=32_000_000.0,
                compute_cycles=slow_modules,
            ),
        )
        points.append(
            SweepPoint(
                label=f"{width}x{width}/{engine}",
                config=config,
                params={"mesh": f"{width}x{width}", "engine": engine},
            )
        )
    return points


def _congestion_opts(mode: str, label: str, base_seed: int) -> RoutingOptions:
    """The two arms of the congestion comparison.

    ``base`` is *measure-only*: congestion tracking is on with a
    neutral penalty (q = 1.0), so the summary carries the hot-link
    metrics while routing behaves exactly like plain EAR.  ``relief``
    keeps the default penalty and turns on ECMP spreading, with a
    label-derived rotation seed so every point is deterministic but
    decorrelated.
    """
    if mode == "base":
        return RoutingOptions(congestion_aware=True, congestion_q=1.0)
    return RoutingOptions(
        congestion_aware=True,
        ecmp=True,
        ecmp_seed=derive_seed(base_seed, f"congestion-relief/{label}"),
    )


@scenario(
    "congestion-relief",
    "hot-link spreading: measure-only EAR vs congestion-aware ECMP",
)
def _congestion_relief(scale: str, base: SimulationConfig) -> list[SweepPoint]:
    """The congestion axis, measured: the same workload routed with
    load tracking only (``base``, bit-identical to plain EAR) and with
    the congestion penalty plus ECMP round-robin (``relief``).  With
    every job funnelling through the source corner, the canonical
    successor tree concentrates relays on a handful of lines; the
    relief arm spreads them across the equal-cost fan.  The quick grid
    pairs both arms on the sequential *and* vector engines — the
    integration suite asserts the hot-link share drops and the
    lifetime never shortens.
    """
    widths = {"smoke": (4,), "quick": (5,), "full": (16,)}[scale]
    kinds = {
        "smoke": ("sequential",),
        "quick": ("sequential", "vector"),
        "full": ("vector",),
    }[scale]
    caps = {"smoke": 8, "quick": 30, "full": 120}
    points = []
    for width in widths:
        for engine in kinds:
            for mode in ("base", "relief"):
                suffix = "/vec" if engine == "vector" else ""
                label = f"{width}x{width}/{mode}{suffix}"
                config = _mesh_point(
                    base, width, engine=engine, max_jobs=caps[scale]
                )
                config = replace(
                    config,
                    routing_opts=_congestion_opts(
                        mode, label, base.workload.seed
                    ),
                )
                points.append(
                    SweepPoint(
                        label=label,
                        config=config,
                        params={
                            "mesh": f"{width}x{width}",
                            "engine": engine,
                            "mode": mode,
                        },
                    )
                )
    return points


#: Fleet seed of the registered fleet scenario family (every scale
#: draws from the same fleet, so quick/full extend the smoke garments).
FLEET_SCENARIO_SEED = 2005


@scenario("fleet", "population fleet sampled from wearer/lot distributions")
def _fleet(scale: str, base: SimulationConfig) -> list[SweepPoint]:
    """The population-scale axis: garments drawn from a wearer/lot
    distribution (fabric size, activity, wash frequency, hardware lot,
    engine mix).  The smoke grid is four garments of the ``smoke``
    preset — enough to pin the sampling chain with a golden trace and
    keep CI fast; ``python -m repro fleet --smoke`` streams the same
    preset at >= 1000 garments with O(1)-memory aggregation.
    """
    # Deferred import: repro.fleet imports this module for derive_seed.
    from ..fleet.distribution import FLEET_PRESETS

    sizes = {"smoke": 4, "quick": 24, "full": 96}
    presets = {"smoke": "smoke", "quick": "default", "full": "default"}
    distribution = FLEET_PRESETS[presets[scale]]
    return distribution.points(
        FLEET_SCENARIO_SEED, range(sizes[scale]), base
    )


@scenario("battery-ablation", "EAR vs SDR across battery capacities")
def _battery_ablation(scale: str, base: SimulationConfig) -> list[SweepPoint]:
    factors = {
        "smoke": (0.5, 1.0),
        "quick": (0.5, 1.0, 2.0),
        "full": (0.25, 0.5, 1.0, 2.0, 4.0),
    }[scale]
    width = 4 if scale == "smoke" else 5
    if scale == "smoke":
        base = _cap_jobs(base, 8)
    points = []
    for factor in factors:
        capacity = base.platform.battery_capacity_pj * factor
        for routing in ("ear", "sdr"):
            config = replace(
                base,
                platform=replace(
                    base.platform,
                    mesh_width=width,
                    battery_capacity_pj=capacity,
                ),
                routing=routing,
            )
            points.append(
                SweepPoint(
                    label=f"B{factor:g}/{routing}",
                    config=config,
                    params={
                        "capacity_factor": factor,
                        "capacity_pj": capacity,
                        "routing": routing,
                    },
                )
            )
    return points
