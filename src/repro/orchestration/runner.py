"""Sequential and process-pool sweep executors.

A *sweep point* pairs one :class:`~repro.config.SimulationConfig` with a
label and the swept parameter values; a *runner* turns a list of points
into :class:`SweepRecord` results, consulting an optional
:class:`~repro.orchestration.cache.SweepCache` first.

Simulations are deterministic functions of their configuration (the
workload RNG is seeded from the config), so the parallel runner's
records are bit-identical to the sequential runner's for any worker
count — the only thing that changes is wall-clock time.  Results are
always returned in input order regardless of completion order.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..config import SimulationConfig
from ..errors import ConfigurationError
from ..sim.et_sim import run_simulation
from ..sim.stats import SimulationStats
from .cache import SweepCache, config_hash

#: Progress callback signature: invoked once per finished point.
ProgressHook = Callable[["SweepRecord"], None]


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep grid.

    Attributes:
        label: Human-readable point label (e.g. ``"4x4/ear"``).
        config: The full simulation configuration of this point.
        params: The swept parameter values (JSON-safe).
    """

    label: str
    config: SimulationConfig
    params: dict = field(default_factory=dict)


@dataclass
class SweepRecord:
    """Outcome of one sweep point.

    Attributes:
        label: The point's label.
        params: The swept parameter values.
        summary: JSON-safe result record
            (:meth:`repro.sim.stats.SimulationStats.summary`).
        config_hash: Content hash of the point's configuration.
        cached: True when the summary was served from the cache.
        stats: Full statistics object — only available for points that
            were actually executed (None on cache hits).
        elapsed_s: Wall-clock seconds the point's simulation took —
            only for executed points (None on cache hits, where the
            stored timing would describe some other machine/run).
    """

    label: str
    params: dict
    summary: dict
    config_hash: str
    cached: bool = False
    stats: SimulationStats | None = None
    elapsed_s: float | None = None

    def record(self, timing: bool = False) -> dict:
        """Flat row for CSV/JSON emission: params merged with summary.

        ``timing=True`` appends ``elapsed_s`` for executed points (the
        bench emitter wants it; parity tests and cached rows must stay
        a pure function of the configuration, so it is opt-in).
        """
        row = dict(self.params)
        row["label"] = self.label
        row.update(self.summary)
        if timing and self.elapsed_s is not None:
            row["elapsed_s"] = round(self.elapsed_s, 6)
        return row


def execute_point(
    point: SweepPoint, trace: bool = False
) -> SimulationStats:
    """Run one point's simulation (module-level so it pickles into
    worker processes).  Wall-clock time lands in ``stats.extra`` so
    the bench harness can track per-point performance.

    With ``trace=True`` the run is driven through a
    :class:`~repro.telemetry.recorder.TraceRecorder` and the finished
    trace (a plain list of dicts, so it pickles back from workers)
    rides along in ``stats.extra["trace"]``, including a
    ``sweep-point`` timer for the point's full wall-clock.
    """
    if not trace:
        start = time.perf_counter()
        stats = run_simulation(point.config)
        stats.extra["elapsed_s"] = time.perf_counter() - start
        return stats
    from ..telemetry.recorder import TraceRecorder

    recorder = TraceRecorder()
    start = time.perf_counter()
    stats = run_simulation(point.config, recorder)
    elapsed = time.perf_counter() - start
    stats.extra["elapsed_s"] = elapsed
    recorder.timing("sweep-point", elapsed)
    stats.extra["trace"] = recorder.lines(
        meta={
            "label": point.label,
            "engine": point.config.resolved_engine(),
            "routing": point.config.routing,
        }
    )
    return stats


class SweepRunner:
    """Common cache-aware driving logic of the sweep executors.

    Args:
        cache: Optional result cache consulted before executing and
            updated after.  ``None`` disables caching.
        trace: When True every *executed* point runs under a
            :class:`~repro.telemetry.recorder.TraceRecorder` and its
            trace lines land in ``record.stats.extra["trace"]``
            (cache hits carry no trace — nothing ran).
    """

    def __init__(
        self, cache: SweepCache | None = None, trace: bool = False
    ):
        self.cache = cache
        self.trace = trace

    # -- to be provided by subclasses ----------------------------------
    def _execute(
        self, points: Sequence[SweepPoint]
    ) -> Iterable[SimulationStats]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def run(
        self,
        points: Sequence[SweepPoint],
        hook: ProgressHook | None = None,
    ) -> list[SweepRecord]:
        """Evaluate every point; results come back in input order.

        Args:
            points: The sweep grid.
            hook: Optional progress callback, invoked once per record
                as it becomes available: cache hits first (input
                order), then executed points.  Under the sequential
                runner execution is lazy, so the hook fires after each
                individual simulation — live progress for long benches.
        """
        points = list(points)
        keys = [config_hash(point.config) for point in points]
        records: list[SweepRecord | None] = [None] * len(points)

        pending: list[tuple[int, SweepPoint]] = []
        for index, (point, key) in enumerate(zip(points, keys)):
            cached = (
                self.cache.lookup(key) if self.cache is not None else None
            )
            if cached is not None:
                records[index] = SweepRecord(
                    label=point.label,
                    params=dict(point.params),
                    summary=cached["summary"],
                    config_hash=key,
                    cached=True,
                )
                if hook is not None:
                    hook(records[index])
            else:
                pending.append((index, point))

        if pending:
            stats_iter = self._execute([point for _, point in pending])
            for (index, point), stats in zip(pending, stats_iter):
                key = keys[index]
                summary = stats.summary()
                records[index] = SweepRecord(
                    label=point.label,
                    params=dict(point.params),
                    summary=summary,
                    config_hash=key,
                    cached=False,
                    stats=stats,
                    elapsed_s=stats.extra.get("elapsed_s"),
                )
                if self.cache is not None:
                    self.cache.store(
                        key,
                        {
                            "label": point.label,
                            "params": dict(point.params),
                            "summary": summary,
                        },
                    )
                if hook is not None:
                    hook(records[index])

        return [record for record in records if record is not None]


def make_runner(
    workers: int = 1,
    cache: SweepCache | None = None,
    trace: bool = False,
) -> "SweepRunner":
    """Executor selection shared by the CLI and the bench harness.

    Args:
        workers: ``1`` = in-process sequential, ``0`` = a process pool
            sized to the machine, ``N > 1`` = a pool of N workers.
        cache: Optional shared result cache.
        trace: Capture a telemetry trace for every executed point.
    """
    if workers == 1:
        return SequentialSweepRunner(cache=cache, trace=trace)
    return ParallelSweepRunner(
        max_workers=workers or None, cache=cache, trace=trace
    )


class SequentialSweepRunner(SweepRunner):
    """In-process, one-at-a-time execution (the fallback path)."""

    def _execute(
        self, points: Sequence[SweepPoint]
    ) -> Iterable[SimulationStats]:
        trace = self.trace
        return (execute_point(point, trace) for point in points)


class ParallelSweepRunner(SweepRunner):
    """Process-pool execution of independent sweep points.

    Args:
        max_workers: Worker process count (``None`` lets
            :class:`~concurrent.futures.ProcessPoolExecutor` pick the
            machine default).
        cache: Optional shared result cache.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        cache: SweepCache | None = None,
        trace: bool = False,
    ):
        super().__init__(cache=cache, trace=trace)
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"need at least one worker, got {max_workers}"
            )
        self.max_workers = max_workers

    @staticmethod
    def _cost_estimate(point: SweepPoint) -> float:
        """Rough relative cost of one point, for scheduling only.

        Run time grows with the fabric size and (when uncapped) with
        the run-to-death length; submitting expensive points first
        keeps the pool busy instead of leaving the biggest mesh as a
        serial tail.  Estimation errors only cost idle time, never
        correctness — results are reassembled in input order.
        """
        config = point.config
        cap = config.workload.max_jobs
        jobs = cap if cap is not None else 10_000
        return float(config.platform.num_mesh_nodes) * jobs

    def _execute(
        self, points: Sequence[SweepPoint]
    ) -> Iterable[SimulationStats]:
        if len(points) == 1:
            # Not worth a pool spin-up for a single pending point.
            return [execute_point(points[0], self.trace)]
        workers = self.max_workers
        if workers is not None:
            workers = min(workers, len(points))
        schedule = sorted(
            range(len(points)),
            key=lambda i: self._cost_estimate(points[i]),
            reverse=True,
        )
        results: list[SimulationStats | None] = [None] * len(points)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(execute_point, points[i], self.trace): i
                for i in schedule
            }
            for future in as_completed(futures):
                results[futures[future]] = future.result()
        return results
