"""The centralized control plane: status ingestion, routing recomputation,
table dissemination, controller fail-over.

One :class:`ControlPlane` owns the controller-side state of the TDMA
mechanism (paper Sec 5.3): the last reported battery level and liveness
of every node, the blocked-port registry of the deadlock-recovery
protocol, the cached routing plan, and the chain of controller units.
Each simulated frame the engine feeds it the node status reports; the
plane re-runs the routing algorithm *only when the reported information
differs from the previous one* — the paper's trigger — and accounts for
every picojoule the controllers spend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..battery.base import Battery
from ..core.engines import RoutingEngine
from ..core.phase3 import NO_DESTINATION, RoutingPlan
from ..core.view import NetworkView
from ..errors import ConfigurationError
from ..mesh.mapping import ModuleMapping
from ..telemetry.recorder import NULL_RECORDER, Recorder
from .controller_power import ControllerEnergyModel
from .deadlock import BlockedPortRegistry, DeadlockPolicy
from .tdma import TdmaSchedule


@dataclass(frozen=True)
class StatusReport:
    """One node's upload-slot payload.

    Attributes:
        node: Reporting node id.
        level: Quantised battery level.
        alive: Whether the node is still alive.
        blocked_port: Successor id of a port the node reports as
            deadlocked, or None.
    """

    node: int
    level: int
    alive: bool
    blocked_port: int | None = None


@dataclass(frozen=True)
class FrameOutcome:
    """What the control plane did during one frame.

    Attributes:
        frame: Frame index.
        plan: The routing plan in force after this frame.
        recomputed: True when the routing algorithm was re-executed.
        reports_processed: Status uploads ingested this frame.
        table_entries_sent: Routing-table entries downloaded to nodes.
        controller_energy_pj: Energy breakdown (rx / compute /
            download_tx / housekeeping / idle_leak).
        controllers_alive: Number of controller units still alive after
            the frame.
        active_controller: Index of the active unit (None if all dead).
        failed_over: True when the active unit died during this frame.
    """

    frame: int
    plan: RoutingPlan | None
    recomputed: bool
    reports_processed: int
    table_entries_sent: int
    controller_energy_pj: dict[str, float] = field(default_factory=dict)
    controllers_alive: int = 0
    active_controller: int | None = None
    failed_over: bool = False

    @property
    def total_controller_energy_pj(self) -> float:
        return sum(self.controller_energy_pj.values())


class ControllerUnit:
    """One physical controller: a battery (or an infinite supply)."""

    def __init__(self, battery: Battery | None):
        self._battery = battery
        self._delivered = 0.0

    @property
    def battery(self) -> Battery | None:
        return self._battery

    @property
    def alive(self) -> bool:
        return self._battery is None or self._battery.alive

    @property
    def delivered_pj(self) -> float:
        """Energy this unit has spent on control work."""
        return self._delivered

    def draw(self, energy_pj: float, duration_cycles: float) -> bool:
        """Draw energy; returns False when the unit died on this draw."""
        if self._battery is None:
            self._delivered += energy_pj
            return True
        if not self._battery.alive:
            return False
        result = self._battery.draw(energy_pj, duration_cycles)
        self._delivered += result.delivered_pj
        return not result.died


class ControlPlane:
    """Controller-side protocol state machine."""

    def __init__(
        self,
        lengths: np.ndarray,
        mapping: ModuleMapping,
        engine: RoutingEngine,
        levels: int,
        schedule: TdmaSchedule,
        energy_model: ControllerEnergyModel,
        deadlock_policy: DeadlockPolicy,
        controller_batteries: list[Battery | None],
        recorder: Recorder | None = None,
    ):
        if not controller_batteries:
            raise ConfigurationError("need at least one controller unit")
        self._recorder = recorder if recorder is not None else NULL_RECORDER
        # Cached gate booleans: the per-frame path must not pay an
        # attribute chain (or any call) for a disabled recorder.
        self._trace = bool(self._recorder.active)
        self._timed = bool(self._recorder.times)
        #: Re-plan causes accumulated since the last recomputation
        #: (trace-only; the update_* hooks feed it).
        self._change_causes: set[str] = set()
        # Own copy: the engine's working matrix mutates under fault
        # injection and must only reach the controller via the
        # update_lengths hook (the controller routes on *known* state).
        self._lengths = np.array(lengths, dtype=float)
        self._num_nodes = int(self._lengths.shape[0])
        self._links_changed = False
        self._mapping = mapping
        self._engine = engine
        self._levels = int(levels)
        self._schedule = schedule
        self._energy_model = energy_model
        self._registry = BlockedPortRegistry(deadlock_policy)
        self._units = [ControllerUnit(b) for b in controller_batteries]
        self._active = 0

        self._node_levels = np.full(self._num_nodes, levels - 1, dtype=int)
        self._node_alive = np.ones(self._num_nodes, dtype=bool)
        self._plan: RoutingPlan | None = None
        self._last_tables: np.ndarray | None = None
        self._recompute_count = 0
        #: Quantised per-link wear levels pushed by the engine (None
        #: while wear-aware routing is off or nothing wore out yet).
        self._wear: np.ndarray | None = None
        #: Quantised per-node harvest income levels learned from status
        #: uploads (None while harvest-aware routing is off or no node
        #: reported income yet).
        self._income: np.ndarray | None = None
        #: Quantised per-link load levels pushed by the engine (None
        #: while congestion-aware routing is off or no link crossed a
        #: load level yet).
        self._load: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def engine(self) -> RoutingEngine:
        return self._engine

    @property
    def plan(self) -> RoutingPlan | None:
        """The routing plan currently in force."""
        return self._plan

    @property
    def units(self) -> tuple[ControllerUnit, ...]:
        return tuple(self._units)

    @property
    def alive(self) -> bool:
        """True while at least one controller unit is alive."""
        return any(unit.alive for unit in self._units)

    @property
    def recompute_count(self) -> int:
        """Total routing recomputations so far."""
        return self._recompute_count

    @property
    def deadlock_reports(self) -> int:
        return self._registry.total_reports

    def update_lengths(self, lengths: np.ndarray) -> None:
        """Hook: the physical link state changed (cut or degraded lines).

        The engine calls this when fault injection rewrites the length
        matrix (``inf`` for severed lines, scaled lengths for degraded
        ones).  The next processed frame recomputes routing from the new
        picture — the same trigger discipline as changed status reports.
        """
        self._lengths = np.array(lengths, dtype=float)
        self._links_changed = True
        if self._trace:
            self._change_causes.add("link-state")

    def update_wear(self, wear: np.ndarray) -> None:
        """Hook: the quantised wear picture changed.

        The engine pushes a fresh wear-level matrix only when some link
        crossed a level boundary (the fault runtime's quantisation), so
        this triggers a recomputation exactly as a changed battery
        report would — not on every traversal.
        """
        self._wear = np.array(wear, dtype=int)
        self._links_changed = True
        if self._trace:
            self._change_causes.add("wear-level")

    def update_income(self, income: np.ndarray) -> None:
        """Hook: the learned per-node harvest-income picture changed.

        The engine pushes a fresh income-level vector only when some
        node's smoothed income crossed a level boundary (the harvest
        runtime's quantisation), so this triggers a recomputation
        exactly as a changed battery report would — not on every
        harvested picojoule.
        """
        self._income = np.array(income, dtype=int)
        self._links_changed = True
        if self._trace:
            self._change_causes.add("income-level")

    def update_load(self, load: np.ndarray) -> None:
        """Hook: the quantised per-link load picture changed.

        The engine pushes a fresh load-level matrix only when some link
        crossed a load level boundary (the congestion runtime's
        quantisation of the traversal-rate EMA), so this triggers a
        recomputation exactly as a changed battery report would — not
        on every forwarded packet.
        """
        self._load = np.array(load, dtype=int)
        self._links_changed = True
        if self._trace:
            self._change_causes.add("load-level")

    def view(self) -> NetworkView:
        """Current reported-state snapshot."""
        return NetworkView(
            lengths=self._lengths,
            alive=self._node_alive.copy(),
            battery_levels=self._node_levels.copy(),
            levels=self._levels,
            mapping=self._mapping,
            blocked_ports=self._registry.blocked_ports(),
            wear=self._wear,
            income=self._income,
            load=self._load,
        )

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _compute_plan_traced(self) -> tuple[RoutingPlan, list[dict]]:
        """Run the routing engine with the trace/timer hooks attached.

        Only called when the recorder is live: the recorder-free path
        keeps calling ``compute_plan(view)`` with no extra arguments,
        so its instruction stream is untouched.  Returns the plan plus
        the per-term weight attribution rows.
        """
        attribution: list[dict] = []
        observer = self._term_observer(attribution) if self._trace else None
        timer = self._recorder.timing if self._timed else None
        if self._timed:
            started = time.perf_counter()
            plan = self._engine.compute_plan(
                self.view(), term_observer=observer, timer=timer
            )
            self._recorder.timing(
                "plan-compute", time.perf_counter() - started
            )
        else:
            plan = self._engine.compute_plan(
                self.view(), term_observer=observer, timer=timer
            )
        return plan, attribution

    @staticmethod
    def _term_observer(sink: list[dict]):
        """Per-term weight-attribution callback for the cost pipeline.

        Each applied term contributes one row summarising how it scaled
        the running weight matrix: how many finite link weights it
        touched and the extreme scale factors.  Ratios are rounded so
        the rows are stable under bit-identical reruns.
        """

        def observe(
            name: str, before: np.ndarray, after: np.ndarray
        ) -> None:
            # Terms scale finite link weights in place, so an entry
            # differs iff the term touched it (inf stays inf, the zero
            # diagonal stays zero) — comparing once and dividing only
            # the changed entries keeps this cheap enough for the
            # TraceRecorder overhead budget.
            changed = before != after
            scaled = int(np.count_nonzero(changed))
            if scaled:
                ratio = after[changed] / before[changed]
                max_factor = float(ratio.max())
                min_factor = float(ratio.min())
            else:
                max_factor, min_factor = 1.0, 1.0
            sink.append(
                {
                    "term": name,
                    "links_scaled": scaled,
                    "max_factor": round(max_factor, 6),
                    "min_factor": round(min_factor, 6),
                }
            )

        return observe

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def bootstrap(self) -> RoutingPlan:
        """Initial route computation and full table download (frame -1).

        The bootstrap is free of charge: the paper collects performance
        data from a fully initialised system.
        """
        if self._trace or self._timed:
            self._plan, attribution = self._compute_plan_traced()
            if self._trace:
                self._change_causes.clear()
                self._recorder.event(
                    "replan",
                    frame=-1,
                    causes=["bootstrap"],
                    terms=attribution,
                )
        else:
            self._plan = self._engine.compute_plan(self.view())
        self._last_tables = self._tables_of(self._plan)
        return self._plan

    def _advance_active(self) -> bool:
        """Move the active index to the next living unit.

        Returns True if a living unit exists.
        """
        for index, unit in enumerate(self._units):
            if unit.alive:
                self._active = index
                return True
        return False

    def _tables_of(self, plan: RoutingPlan) -> np.ndarray:
        """Per-node routing tables implied by a plan.

        Entry ``[n, i]`` is the next hop stored at node ``n`` for module
        ``i`` (paper Fig 6's ``RT(i)``), or -1 when unreachable.
        """
        size = self._num_nodes
        p = self._mapping.num_modules
        tables = np.full((size, p + 1), -1, dtype=np.int64)
        for node in range(size):
            if not plan.view.alive[node]:
                continue
            for module in range(1, p + 1):
                dest = int(plan.destinations[node, module])
                if dest == NO_DESTINATION:
                    continue
                if dest == node:
                    tables[node, module] = node
                else:
                    tables[node, module] = int(plan.successors[node, dest])
        return tables

    def process_frame(
        self,
        frame: int,
        reports: list[StatusReport],
        heartbeat_count: int | None = None,
    ) -> FrameOutcome:
        """Run one TDMA frame of the control protocol.

        Args:
            frame: Frame index (monotonically increasing).
            reports: Status uploads whose content *changed* this frame
                (level transitions, deaths, deadlock flags).
            heartbeat_count: Total uploads physically received this
                frame (every live node reports in its slot each frame,
                paper Sec 5.3).  Defaults to ``len(reports)``.  Node-side
                transmit energy is charged by the engine; this method
                charges the controller's receive side.
        """
        if self._plan is None:
            raise ConfigurationError("bootstrap() must run before frames")

        energy = {
            "rx": 0.0,
            "compute": 0.0,
            "download_tx": 0.0,
            "housekeeping": 0.0,
            "idle_leak": 0.0,
        }
        if not self._advance_active():
            return FrameOutcome(
                frame=frame,
                plan=self._plan,
                recomputed=False,
                reports_processed=0,
                table_entries_sent=0,
                controller_energy_pj=energy,
                controllers_alive=0,
                active_controller=None,
            )
        active_index = self._active
        active = self._units[active_index]

        trace = self._trace
        changed = False
        for report in reports:
            if not 0 <= report.node < self._num_nodes:
                raise ConfigurationError(
                    f"report from unknown node {report.node}"
                )
            if self._node_levels[report.node] != report.level:
                self._node_levels[report.node] = report.level
                changed = True
                if trace:
                    self._change_causes.add("battery-level")
            if self._node_alive[report.node] != report.alive:
                self._node_alive[report.node] = report.alive
                changed = True
                if trace:
                    self._change_causes.add("liveness")
            if report.blocked_port is not None:
                if self._registry.report(report.node, report.blocked_port, frame):
                    changed = True
                    if trace:
                        self._change_causes.add("deadlock-report")
        if self._registry.expire(frame):
            changed = True
            if trace:
                self._change_causes.add("deadlock-expiry")
        if self._links_changed:
            changed = True
            self._links_changed = False

        received = heartbeat_count if heartbeat_count is not None else len(reports)
        energy["rx"] = self._energy_model.rx_energy_pj(received)
        energy["housekeeping"] = self._energy_model.housekeeping_energy_pj(
            self._num_nodes
        )

        entries_sent = 0
        recomputed = False
        if changed:
            if trace or self._timed:
                self._plan, attribution = self._compute_plan_traced()
                causes = sorted(self._change_causes)
                self._change_causes.clear()
            else:
                self._plan = self._engine.compute_plan(self.view())
            self._recompute_count += 1
            recomputed = True
            energy["compute"] = self._energy_model.route_compute_energy_pj(
                self._num_nodes
            )
            new_tables = self._tables_of(self._plan)
            if self._last_tables is None:
                entries_sent = int(np.count_nonzero(new_tables >= 0))
            else:
                # Only rows of *live* nodes are downloaded: a dead
                # node's row flips to -1 against the previous tables,
                # and the controller must not pay to download a routing
                # table to a corpse.
                changed = new_tables != self._last_tables
                changed &= self._node_alive[:, np.newaxis]
                entries_sent = int(np.count_nonzero(changed))
            self._last_tables = new_tables
            energy["download_tx"] = (
                entries_sent * self._schedule.table_entry_energy_pj
            )
            if trace:
                self._recorder.event(
                    "replan",
                    frame=frame,
                    causes=causes,
                    reports=len(reports),
                    entries_sent=entries_sent,
                    terms=attribution,
                )

        idle_units = [
            u for i, u in enumerate(self._units)
            if i != active_index and u.alive
        ]

        # Charge the energy: active unit pays rx+compute+download+housekeeping,
        # idle units pay their own leak.
        active_cost = (
            energy["rx"]
            + energy["compute"]
            + energy["download_tx"]
            + energy["housekeeping"]
        )
        survived = active.draw(active_cost, self._schedule.frame_cycles)
        idle_cost = self._energy_model.idle_energy_pj(self._num_nodes)
        # The reported leak is what the idle cells actually *delivered*
        # — a unit dying mid-draw delivers less than the nominal quantum,
        # and the frame breakdown must agree with the batteries.
        idle_delivered = 0.0
        for unit in idle_units:
            before = unit.delivered_pj
            unit.draw(idle_cost, self._schedule.frame_cycles)
            idle_delivered += unit.delivered_pj - before
        energy["idle_leak"] = idle_delivered

        failed_over = False
        if not survived:
            failed_over = True
            self._advance_active()

        return FrameOutcome(
            frame=frame,
            plan=self._plan,
            recomputed=recomputed,
            reports_processed=len(reports),
            table_entries_sent=entries_sent,
            controller_energy_pj=energy,
            controllers_alive=sum(1 for u in self._units if u.alive),
            active_controller=self._active if self.alive else None,
            failed_over=failed_over,
        )
