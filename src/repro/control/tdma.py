"""TDMA schedule of the shared control medium (paper Fig 4).

One frame consists of an uploading phase — one slot per node, in node-id
order — followed by a downloading phase, then the remainder of the frame
is available to the data network.  The medium is very narrow ("for
instance, only 2-bit wide"), so a transfer of ``b`` bits occupies
``ceil(b / width)`` cycles of the shared medium.

The schedule object is pure arithmetic: it fixes slot positions, frame
length and per-transfer energies; the stateful protocol logic lives in
:mod:`repro.control.controller`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..link.transmission_line import TransmissionLineModel

#: Default frame length in cycles.  At the paper's 100 MHz clock a frame
#: is ~10 us; a 30-operation AES job spans a handful of frames.
DEFAULT_FRAME_CYCLES = 1024

#: Default shared-medium width (paper Sec 5.3: "only 2-bit wide").
DEFAULT_MEDIUM_WIDTH_BITS = 2

#: Default status report payload: 3 bits of battery level + 1 deadlock
#: flag.
DEFAULT_STATUS_BITS = 4

#: Default routing-table entry payload: node address + module id + next
#: hop (mesh degree <= 4 plus self).
DEFAULT_TABLE_ENTRY_BITS = 12

#: Effective electrical length of one slot transfer on the shared
#: medium, in cm.  The medium is bused along the fabric; transfers are
#: short-haul to the nearest controller tap.
DEFAULT_MEDIUM_SEGMENT_CM = 1.0


@dataclass(frozen=True)
class TdmaSchedule:
    """Static timing/energy parameters of the shared control medium.

    Attributes:
        num_nodes: Number of node upload slots per frame.
        frame_cycles: Total frame length in cycles.
        medium_width_bits: Parallel width of the shared medium.
        status_bits: Upload payload size per node report.
        table_entry_bits: Download payload per routing-table entry.
        medium_segment_cm: Electrical length used for per-bit energy on
            the medium.
        line: Transmission-line model for the medium's per-bit energy.
    """

    num_nodes: int
    frame_cycles: int = DEFAULT_FRAME_CYCLES
    medium_width_bits: int = DEFAULT_MEDIUM_WIDTH_BITS
    status_bits: int = DEFAULT_STATUS_BITS
    table_entry_bits: int = DEFAULT_TABLE_ENTRY_BITS
    medium_segment_cm: float = DEFAULT_MEDIUM_SEGMENT_CM
    line: TransmissionLineModel = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.line is None:
            object.__setattr__(self, "line", TransmissionLineModel())
        if self.num_nodes < 1:
            raise ConfigurationError("schedule needs >= 1 node")
        if self.medium_width_bits < 1:
            raise ConfigurationError(
                f"medium width must be >= 1 bit, got {self.medium_width_bits}"
            )
        if self.status_bits < 1 or self.table_entry_bits < 1:
            raise ConfigurationError("payload sizes must be >= 1 bit")
        if self.medium_segment_cm <= 0:
            raise ConfigurationError("medium segment length must be positive")
        if self.frame_cycles < self.control_section_cycles:
            raise ConfigurationError(
                f"frame of {self.frame_cycles} cycles cannot fit the "
                f"control section of {self.control_section_cycles} cycles"
            )

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    @property
    def upload_slot_cycles(self) -> int:
        """Cycles occupied by one node's status upload."""
        return -(-self.status_bits // self.medium_width_bits)

    @property
    def download_slot_cycles(self) -> int:
        """Cycles occupied by one routing-table entry download."""
        return -(-self.table_entry_bits // self.medium_width_bits)

    @property
    def control_section_cycles(self) -> int:
        """Cycles reserved for the upload + download phases per frame.

        The download budget is sized for one table entry per node, which
        bounds the common case (incremental updates); larger downloads
        spill into subsequent frames without affecting energy accounting.
        """
        return self.num_nodes * (
            self.upload_slot_cycles + self.download_slot_cycles
        )

    @property
    def data_section_cycles(self) -> int:
        """Cycles per frame left to the data network."""
        return self.frame_cycles - self.control_section_cycles

    def frame_of_cycle(self, cycle: int) -> int:
        """Frame index containing an absolute cycle timestamp."""
        if cycle < 0:
            raise ConfigurationError(f"cycle must be >= 0, got {cycle}")
        return cycle // self.frame_cycles

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------
    @property
    def energy_per_bit_pj(self) -> float:
        """Per-bit-switch energy of one transfer on the shared medium."""
        return self.line.energy_per_bit_switch_pj(self.medium_segment_cm)

    @property
    def upload_energy_pj(self) -> float:
        """Transmit energy of one status upload (paid by the node)."""
        return self.status_bits * self.energy_per_bit_pj

    @property
    def table_entry_energy_pj(self) -> float:
        """Transmit energy of one table-entry download (paid by the
        active controller)."""
        return self.table_entry_bits * self.energy_per_bit_pj
