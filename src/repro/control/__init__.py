"""TDMA control mechanism and central controllers (paper Sec 5.3).

The e-textile platform separates *data* (dedicated point-to-point textile
lines) from *control* (a narrow shared medium, 2 bits wide by default,
time-division multiplexed).  Nodes report quantised battery status and
deadlock flags in their upload slots; one active central controller
re-runs the routing algorithm whenever the reported information changes
and downloads the updated routing-table entries in the download phase.
Controllers can be replicated with fail-over (paper Sec 7.3 / Fig 8):
the active controller burns energy per control action, idle spares leak
slowly, and when the active one dies the next takes over.
"""

from .controller import ControlPlane, FrameOutcome, StatusReport
from .controller_power import ControllerEnergyModel, ControllerPowerReference
from .deadlock import BlockedPortRegistry, DeadlockPolicy
from .tdma import TdmaSchedule

__all__ = [
    "BlockedPortRegistry",
    "ControlPlane",
    "ControllerEnergyModel",
    "ControllerPowerReference",
    "DeadlockPolicy",
    "FrameOutcome",
    "StatusReport",
    "TdmaSchedule",
]
