"""Central-controller energy model.

The paper designs controllers in Verilog for every mesh size and reports,
for the 4x4 controller at 100 MHz, a dynamic power of 6.94 mW and a
leakage power of 0.57 mW (Sec 7.3).  Those figures are kept here as the
:class:`ControllerPowerReference`.

Taken literally against the paper's shrunken 60 000 pJ battery a
controller would die within microseconds, so — like the paper, which
shrinks capacity "to reduce the simulation time" and compresses the
discharge profile to match — the simulator works with *per-action energy
quanta* whose relative scaling follows the hardware reference:

* receive cost per status upload (RX datapath activity),
* routing recomputation cost proportional to K^3 (the Floyd–Warshall
  dominates the controller's dynamic activity, Sec 6),
* per-frame housekeeping proportional to mesh size (frame sync, slot
  counters — the "bigger mesh controller consumes more power" effect
  behind Fig 8's decreasing tails),
* idle leakage per frame for the spare controllers of the fail-over
  chain.

The default quanta are calibrated so Fig 8's structure reproduces: a
single controller sustains roughly half the node-limited lifetime on a
4x4 mesh and a small fraction of it on an 8x8 mesh.  All quanta are
explicit configuration, revisited in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import mw_to_pj_per_cycle, require_non_negative


@dataclass(frozen=True)
class ControllerPowerReference:
    """Published hardware figures for the synthesised controller."""

    dynamic_power_mw: float = 6.94
    leakage_power_mw: float = 0.57
    clock_hz: float = 100e6
    mesh_size: int = 16

    @property
    def dynamic_pj_per_cycle(self) -> float:
        """Dynamic energy per active cycle (69.4 pJ for the reference)."""
        return mw_to_pj_per_cycle(self.dynamic_power_mw, self.clock_hz)

    @property
    def leakage_pj_per_cycle(self) -> float:
        """Leakage energy per cycle (5.7 pJ for the reference)."""
        return mw_to_pj_per_cycle(self.leakage_power_mw, self.clock_hz)


@dataclass(frozen=True)
class ControllerEnergyModel:
    """Per-action energy quanta of one central controller.

    Attributes:
        rx_per_status_pj: Energy to receive and process one node status
            upload.
        route_compute_coeff_pj: Coefficient ``kappa`` of the routing
            recomputation cost ``kappa * K^3`` (Floyd–Warshall work).
        housekeeping_per_frame_pj: Active controller's fixed per-frame
            cost at the reference 16-node mesh; scales linearly with
            ``K / 16``.
        idle_leak_per_frame_pj: Per-frame leakage of each *idle* spare
            controller at the reference mesh; scales with ``K / 16``.
        reference_mesh_size: Mesh size the per-frame quanta are quoted
            at.
    """

    rx_per_status_pj: float = 8.0
    route_compute_coeff_pj: float = 0.001
    housekeeping_per_frame_pj: float = 60.0
    idle_leak_per_frame_pj: float = 2.0
    reference_mesh_size: int = 16

    def __post_init__(self) -> None:
        require_non_negative("rx_per_status_pj", self.rx_per_status_pj)
        require_non_negative(
            "route_compute_coeff_pj", self.route_compute_coeff_pj
        )
        require_non_negative(
            "housekeeping_per_frame_pj", self.housekeeping_per_frame_pj
        )
        require_non_negative(
            "idle_leak_per_frame_pj", self.idle_leak_per_frame_pj
        )
        if self.reference_mesh_size < 1:
            raise ConfigurationError("reference mesh size must be >= 1")

    def _scale(self, num_nodes: int) -> float:
        return num_nodes / self.reference_mesh_size

    def rx_energy_pj(self, reports: int) -> float:
        """Energy to ingest ``reports`` status uploads."""
        if reports < 0:
            raise ConfigurationError(f"reports must be >= 0, got {reports}")
        return reports * self.rx_per_status_pj

    def route_compute_energy_pj(self, num_nodes: int) -> float:
        """Energy of one full routing recomputation on ``num_nodes``."""
        if num_nodes < 1:
            raise ConfigurationError("num_nodes must be >= 1")
        return self.route_compute_coeff_pj * float(num_nodes) ** 3

    def housekeeping_energy_pj(self, num_nodes: int) -> float:
        """Active controller's fixed cost per frame."""
        return self.housekeeping_per_frame_pj * self._scale(num_nodes)

    def idle_energy_pj(self, num_nodes: int) -> float:
        """One idle spare controller's leakage per frame."""
        return self.idle_leak_per_frame_pj * self._scale(num_nodes)
