"""Deadlock detection and recovery bookkeeping (paper Sec 5.3 / Fig 6).

"When a job stays at a node for more than a threshold period, that node
needs to report the occurrence of deadlock during its next upload slot.
The central controller sends then the new routing instruction to that
node to redirect the job along an unlocked path."

The policy object holds the thresholds; the registry tracks which output
ports the controller currently treats as blocked, with an expiry so
transient congestion does not poison routing forever.  Phase 3 consults
the blocked set via :class:`repro.core.view.NetworkView`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class DeadlockPolicy:
    """Thresholds of the deadlock-recovery protocol.

    Attributes:
        wait_threshold_frames: Frames a packet may wait at one node
            before the node reports a deadlock.
        blocked_expiry_frames: Frames a reported port stays excluded
            from phase 3 before the controller forgives it.
    """

    wait_threshold_frames: int = 4
    blocked_expiry_frames: int = 8

    def __post_init__(self) -> None:
        if self.wait_threshold_frames < 1:
            raise ConfigurationError(
                "wait threshold must be >= 1 frame, got "
                f"{self.wait_threshold_frames}"
            )
        if self.blocked_expiry_frames < 1:
            raise ConfigurationError(
                "blocked-port expiry must be >= 1 frame, got "
                f"{self.blocked_expiry_frames}"
            )


class BlockedPortRegistry:
    """Controller-side set of ports excluded by deadlock recovery."""

    def __init__(self, policy: DeadlockPolicy):
        self._policy = policy
        self._blocked: dict[tuple[int, int], int] = {}
        self._total_reports = 0

    @property
    def policy(self) -> DeadlockPolicy:
        return self._policy

    @property
    def total_reports(self) -> int:
        """Deadlock reports accepted since construction."""
        return self._total_reports

    def report(self, node: int, port: int, frame: int) -> bool:
        """Register a deadlock report for port ``node -> port``.

        Returns True when the blocked set changed (which forces a
        routing recomputation).
        """
        key = (node, port)
        expiry = frame + self._policy.blocked_expiry_frames
        changed = key not in self._blocked
        self._blocked[key] = expiry
        self._total_reports += 1
        return changed

    def expire(self, frame: int) -> bool:
        """Drop entries whose expiry has passed; True if any were dropped."""
        stale = [key for key, until in self._blocked.items() if until <= frame]
        for key in stale:
            del self._blocked[key]
        return bool(stale)

    def blocked_ports(self) -> frozenset[tuple[int, int]]:
        """Currently excluded ``(node, successor)`` pairs."""
        return frozenset(self._blocked)

    def is_blocked(self, node: int, port: int) -> bool:
        return (node, port) in self._blocked
