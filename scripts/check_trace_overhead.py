#!/usr/bin/env python
"""Fail CI when the telemetry layer stops being zero-overhead.

Runs the congestion-relief smoke point three ways — recorder-free,
with the default :class:`~repro.telemetry.recorder.NullRecorder`, and
with a full :class:`~repro.telemetry.recorder.TraceRecorder` — in
interleaved repeats, and compares *minimum* wall-clock times (the
robust estimator under additive scheduler noise: on a ~25 ms point a
shared runner's jitter inflates medians well past any real telemetry
cost, while the best-of-N of each mode converges on the true
instruction-stream cost):

* the NullRecorder run must stay within benchmark noise of the bare
  run (default ceiling +8%): the null path is gated out of the hot
  loops entirely, so any measurable cost is a telemetry leak;
* the TraceRecorder run must stay within the observability budget
  (default ceiling +10%).

All three modes must also produce bit-identical summaries — overhead
aside, a recorder must never change what the simulation computes.

``--trace-out`` additionally writes the traced run's JSONL lines, so
one invocation doubles as the CI trace-artifact producer.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time


def run_point(config, recorder=None) -> tuple[float, dict]:
    from repro.sim.et_sim import run_simulation

    started = time.perf_counter()
    stats = run_simulation(config, recorder)
    return time.perf_counter() - started, stats.summary()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=9,
        help="interleaved repeats per mode per batch "
        "(default 9; minima compared)",
    )
    parser.add_argument(
        "--max-batches", type=int, default=4,
        help="extra batches to run (merging minima) while the ratios "
        "sit above a ceiling — quadratic flake suppression on noisy "
        "runners; a real regression fails every batch (default 4)",
    )
    parser.add_argument(
        "--null-ceiling", type=float, default=1.08,
        help="max allowed NullRecorder/bare median ratio (default 1.08)",
    )
    parser.add_argument(
        "--trace-ceiling", type=float, default=1.10,
        help="max allowed TraceRecorder/bare median ratio (default 1.10)",
    )
    parser.add_argument(
        "--scenario", default="congestion-relief",
        help="bench scenario holding the probe point",
    )
    parser.add_argument(
        "--label", default="4x4/relief",
        help="point label inside the scenario",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="also dump the traced run's JSONL lines to PATH "
        "(the CI trace artifact)",
    )
    args = parser.parse_args(argv)

    from repro.orchestration import build_scenario
    from repro.telemetry import (
        NULL_RECORDER,
        TraceRecorder,
        dump_trace,
    )

    matches = [
        point
        for point in build_scenario(args.scenario, scale="smoke")
        if point.label == args.label
    ]
    if len(matches) != 1:
        print(
            f"error: point {args.label!r} not found in scenario "
            f"{args.scenario!r}"
        )
        return 2
    config = matches[0].config

    # One untimed warm-up run per mode settles imports and allocators.
    run_point(config)
    run_point(config, NULL_RECORDER)
    last_recorder = TraceRecorder()
    run_point(config, last_recorder)

    bare: list[float] = []
    null: list[float] = []
    traced: list[float] = []
    summaries: set[str] = set()
    import json

    for batch in range(max(1, args.max_batches)):
        for _ in range(max(1, args.repeats)):
            # Interleave the modes so slow-machine drift (thermal,
            # noisy neighbours) biases all three equally instead of
            # one.
            elapsed, summary = run_point(config)
            bare.append(elapsed)
            summaries.add(json.dumps(summary, sort_keys=True))
            elapsed, summary = run_point(config, NULL_RECORDER)
            null.append(elapsed)
            summaries.add(json.dumps(summary, sort_keys=True))
            last_recorder = TraceRecorder()
            elapsed, summary = run_point(config, last_recorder)
            traced.append(elapsed)
            summaries.add(json.dumps(summary, sort_keys=True))

        if len(summaries) != 1:
            print(
                "error: recorder modes produced diverging summaries — "
                "telemetry mutated simulation state"
            )
            return 1

        bare_s = min(bare)
        null_ratio = min(null) / bare_s
        trace_ratio = min(traced) / bare_s
        print(
            f"{args.scenario}/{args.label}: bare best "
            f"{bare_s * 1e3:.1f} ms (median "
            f"{statistics.median(bare) * 1e3:.1f} ms) over "
            f"{len(bare)} repeat(s)"
        )
        print(
            f"  null-recorder  x{null_ratio:.3f} (ceiling "
            f"x{args.null_ceiling:.2f})"
        )
        print(
            f"  trace-recorder x{trace_ratio:.3f} (ceiling "
            f"x{args.trace_ceiling:.2f})"
        )
        if (
            null_ratio <= args.null_ceiling
            and trace_ratio <= args.trace_ceiling
        ):
            break
        if batch + 1 < max(1, args.max_batches):
            print("  over a ceiling — measuring another batch")

    if args.trace_out:
        count = dump_trace(
            args.trace_out,
            last_recorder.lines(
                meta={
                    "command": "check-trace-overhead",
                    "label": args.label,
                    "scenario": args.scenario,
                }
            ),
        )
        print(f"trace artifact: {count} line(s) -> {args.trace_out}")

    failures = []
    if null_ratio > args.null_ceiling:
        failures.append(
            f"NullRecorder overhead x{null_ratio:.3f} exceeds "
            f"x{args.null_ceiling:.2f} — the null path leaked into a "
            "hot loop"
        )
    if trace_ratio > args.trace_ceiling:
        failures.append(
            f"TraceRecorder overhead x{trace_ratio:.3f} exceeds "
            f"x{args.trace_ceiling:.2f}"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("telemetry overhead within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
