#!/usr/bin/env python
"""Fail CI when a benchmark point regresses against the committed baseline.

Compares two ``python -m repro bench --smoke --json`` documents — the
committed ``BENCH_smoke.json`` baseline and a freshly-measured run — and
exits non-zero if any point's wall-clock time regressed by more than the
threshold (default 25%).

Two guards keep the check meaningful on shared CI runners:

* **Machine normalisation** — the fresh run is rescaled by the median
  fresh/baseline ratio over the trustworthy points, so a uniformly
  slower runner does not fail every point.  The factor is clamped to
  [0.5, 2.0]: a *code* change that slows everything by more than 2x
  cannot hide behind the normalisation.
* **Noise floor** — points faster than the floor (default 50 ms) on
  both sides are timer noise at smoke scale and are skipped.

Points present only on one side are reported but never fatal: scenario
families grow PR by PR, and the next baseline refresh picks them up.

Refresh the baseline after an intentional perf change with::

    PYTHONPATH=src python -m repro bench --smoke --json > BENCH_smoke.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys

#: Per-section threshold overrides (section name -> max normalised
#: fresh/baseline ratio).  Most sections use the CLI --threshold;
#: sections listed here are inherently noisier than a pure simulation
#: loop and get their own tolerance.
#:
#: * ``fleet-shard`` — sharded fleet points time process-pool spin-up,
#:   per-shard state-file IO and the retry/manifest machinery on a
#:   shared runner, so their wall clock wobbles far more than the
#:   simulation work they wrap.
SECTION_THRESHOLDS: dict[str, float] = {
    "fleet-shard": 1.50,
}


def threshold_for(name: str, default: float) -> float:
    """The regression threshold guarding one ``section/label`` point."""
    section = name.split("/", 1)[0]
    return SECTION_THRESHOLDS.get(section, default)


def load_document(path: str) -> tuple[dict[str, float], set[str]]:
    """Parse one bench JSON document.

    Returns the flattened ``{scenario/label: elapsed_s}`` timing map
    plus the set of scenario section names present in the document —
    the section set is what lets the guard distinguish "this scenario
    ran but every point was cached" from "this scenario never ran at
    all" (a silently skipped section must fail CI, not pass it).

    Tolerates non-bench keys in the document: fleet bundles (and any
    future aggregate-shaped sections) are dicts rather than record
    lists, and carry no per-point timings to guard.
    """
    with open(path) as handle:
        document = json.load(handle)
    points: dict[str, float] = {}
    sections: set[str] = set()
    for scenario, records in document.items():
        if not isinstance(records, list):
            continue
        sections.add(scenario)
        for record in records:
            if not isinstance(record, dict) or "label" not in record:
                continue
            elapsed = record.get("elapsed_s")
            if elapsed is None:  # cached points carry no timing
                continue
            points[f"{scenario}/{record['label']}"] = float(elapsed)
    return points, sections


def load_points(path: str) -> dict[str, float]:
    """Flatten a bench JSON document to ``{scenario/label: elapsed_s}``."""
    return load_document(path)[0]


def machine_factor(
    baseline: dict[str, float], fresh: dict[str, float], floor: float
) -> float:
    ratios = [
        fresh[name] / baseline[name]
        for name in baseline.keys() & fresh.keys()
        if baseline[name] >= floor and fresh[name] > 0.0
    ]
    if not ratios:
        return 1.0
    return min(2.0, max(0.5, statistics.median(ratios)))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_smoke.json")
    parser.add_argument("fresh", help="freshly measured bench JSON")
    parser.add_argument(
        "--threshold", type=float, default=1.25,
        help="fail when normalised fresh/baseline exceeds this (1.25 = +25%%)",
    )
    parser.add_argument(
        "--floor", type=float, default=0.05, metavar="SECONDS",
        help="skip points faster than this on both sides (timer noise)",
    )
    args = parser.parse_args(argv)

    baseline, baseline_sections = load_document(args.baseline)
    fresh, fresh_sections = load_document(args.fresh)
    if not baseline_sections:
        print(f"error: no scenario sections in baseline {args.baseline}")
        return 2
    if not fresh_sections:
        print(f"error: no scenario sections in {args.fresh}")
        return 2
    missing_sections = sorted(baseline_sections - fresh_sections)
    if missing_sections:
        print(
            f"error: {args.fresh} is missing scenario section(s) the "
            f"baseline guards: {', '.join(missing_sections)} — the "
            "fresh bench must run every baselined scenario (did a "
            "--scenario filter drop one?)"
        )
        return 2
    for extra in sorted(fresh_sections - baseline_sections):
        print(
            f"  note  scenario {extra!r} has no baseline section yet "
            "(informational)"
        )
    if not baseline:
        print(f"error: no timed points in baseline {args.baseline}")
        return 2
    if not fresh:
        print(
            f"error: no timed points in {args.fresh} — was the fresh "
            "bench run with a warm cache?"
        )
        return 2

    scale = machine_factor(baseline, fresh, args.floor)
    print(f"machine factor {scale:.3f} (fresh times divided by this)")

    failures: list[str] = []
    for name in sorted(baseline):
        if name not in fresh:
            print(f"  skip  {name}: missing from fresh run")
            continue
        base_s, fresh_s = baseline[name], fresh[name]
        if base_s < args.floor and fresh_s < args.floor:
            continue
        ratio = (fresh_s / scale) / base_s
        limit = threshold_for(name, args.threshold)
        verdict = "FAIL" if ratio > limit else "ok"
        note = (
            f", section limit x{limit:.2f}"
            if limit != args.threshold
            else ""
        )
        print(
            f"  {verdict:>4}  {name}: {base_s:.3f}s -> {fresh_s:.3f}s "
            f"(normalised x{ratio:.2f}{note})"
        )
        if ratio > limit:
            failures.append(name)
    candidates = sorted(fresh.keys() - baseline.keys())
    for name in candidates:
        print(f"  new   {name}: {fresh[name]:.3f}s (no baseline yet)")
    if candidates:
        # Candidate-only points are informational: scenario families
        # grow PR by PR, and the next committed baseline refresh
        # starts guarding them.
        print(
            f"{len(candidates)} candidate-only point(s) not guarded — "
            "refresh BENCH_smoke.json to baseline them"
        )

    if failures:
        print(
            f"\n{len(failures)} point(s) regressed beyond their "
            f"threshold: {', '.join(failures)}"
        )
        return 1
    print("\nno benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
